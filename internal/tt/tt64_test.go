package tt

import (
	"math/rand"
	"testing"
)

// TestWideNarrowAgainstFunc16 pins the widening invariant: a widened
// 4-variable table computes the same function, does not depend on the
// upper variables, and every connective commutes with widening.
func TestWideNarrowAgainstFunc16(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 5000; iter++ {
		f16 := Func16(rng.Uint32())
		g16 := Func16(rng.Uint32())
		f, g := f16.Wide(), g16.Wide()
		if f.DependsOn(4) || f.DependsOn(5) {
			t.Fatalf("%v widened depends on upper variables", f16)
		}
		if f.Narrow16() != f16 {
			t.Fatalf("narrow(wide(%v)) = %v", f16, f.Narrow16())
		}
		if f.And(g) != f16.And(g16).Wide() || f.Or(g) != f16.Or(g16).Wide() ||
			f.Xor(g) != f16.Xor(g16).Wide() || f.Not() != f16.Not().Wide() {
			t.Fatalf("connectives do not commute with widening for %v, %v", f16, g16)
		}
		for row := uint(0); row < 64; row++ {
			if f.Eval(row) != f16.Eval(row&15) {
				t.Fatalf("%v widened disagrees at row %d", f16, row)
			}
		}
		if 4*f16.Ones() != f.Ones() {
			t.Fatalf("%v: ones %d vs widened %d", f16, f16.Ones(), f.Ones())
		}
	}
}

// TestCofactorFlip64AgainstFunc16 checks cofactoring, flipping, support
// and XOR-decomposition against the 4-variable implementations on
// widened tables, then spot-checks the upper variables definitionally.
func TestCofactorFlip64AgainstFunc16(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 5000; iter++ {
		f16 := Func16(rng.Uint32())
		f := f16.Wide()
		for v := 0; v < 4; v++ {
			if f.Cofactor0(v) != f16.Cofactor0(v).Wide() {
				t.Fatalf("cofactor0(%d) mismatch for %v", v, f16)
			}
			if f.Cofactor1(v) != f16.Cofactor1(v).Wide() {
				t.Fatalf("cofactor1(%d) mismatch for %v", v, f16)
			}
			if f.FlipVar(v) != f16.FlipVar(v).Wide() {
				t.Fatalf("flip(%d) mismatch for %v", v, f16)
			}
			if f.DependsOn(v) != f16.DependsOn(v) {
				t.Fatalf("dependsOn(%d) mismatch for %v", v, f16)
			}
			g, ok := f.IsXorDecomposable(v)
			g16, ok16 := f16.IsXorDecomposable(v)
			if ok != ok16 || (ok && g != g16.Wide()) {
				t.Fatalf("xor-decomposition(%d) mismatch for %v", v, f16)
			}
		}
		if f.Support() != f16.Support() || f.SupportSize() != f16.SupportSize() {
			t.Fatalf("support mismatch for %v", f16)
		}
	}
	// Definitional check of the upper variables on full random tables.
	for iter := 0; iter < 2000; iter++ {
		f := Func64(rng.Uint64())
		for v := 0; v < 6; v++ {
			c0, c1, fl := f.Cofactor0(v), f.Cofactor1(v), f.FlipVar(v)
			for row := uint(0); row < 64; row++ {
				if c0.Eval(row) != f.Eval(row&^(1<<uint(v))) {
					t.Fatalf("cofactor0(%d) wrong at row %d", v, row)
				}
				if c1.Eval(row) != f.Eval(row|1<<uint(v)) {
					t.Fatalf("cofactor1(%d) wrong at row %d", v, row)
				}
				if fl.Eval(row) != f.Eval(row^1<<uint(v)) {
					t.Fatalf("flip(%d) wrong at row %d", v, row)
				}
			}
		}
	}
}

// TestPermuteVars64 checks the permutation semantics definitionally and
// its composition with the identity.
func TestPermuteVars64(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 500; iter++ {
		f := Func64(rng.Uint64())
		var perm [6]int
		for i, p := range rng.Perm(6) {
			perm[i] = p
		}
		g := f.PermuteVars(perm)
		for row := uint(0); row < 64; row++ {
			src := uint(0)
			for v := 0; v < 6; v++ {
				src |= (row >> uint(v) & 1) << uint(perm[v])
			}
			if g.Eval(row) != f.Eval(src) {
				t.Fatalf("permute %v wrong at row %d", perm, row)
			}
		}
		if f.PermuteVars([6]int{0, 1, 2, 3, 4, 5}) != f {
			t.Fatal("identity permutation changed the table")
		}
	}
}

// TestISOP64 checks that the cover is a function inside the interval
// and that the returned table matches the cover, including against the
// 4-variable ISOP on widened tables.
func TestISOP64(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 2000; iter++ {
		on := Func64(rng.Uint64())
		dc := Func64(rng.Uint64()) &^ on
		cover, table := ISOP64(on, dc, 6)
		if got := CoverTable64(cover); got != table {
			t.Fatalf("cover table %v, reported %v", got, table)
		}
		if on&^table != 0 {
			t.Fatalf("cover misses onset rows: on=%v table=%v", on, table)
		}
		if table&^(on|dc) != 0 {
			t.Fatalf("cover exceeds the interval: table=%v on|dc=%v", table, on|dc)
		}
	}
	// Exact covers of widened 4-variable functions agree with ISOP.
	for iter := 0; iter < 2000; iter++ {
		on16 := Func16(rng.Uint32())
		_, t16 := ISOP(on16, 0)
		_, t64 := ISOP64(on16.Wide(), 0, 6)
		if t16 != on16 || t64 != on16.Wide() {
			t.Fatalf("exact ISOP not exact: %v -> %v / %v", on16, t16, t64)
		}
	}
}

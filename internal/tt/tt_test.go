package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarTables(t *testing.T) {
	for v := 0; v < 4; v++ {
		for row := uint(0); row < 16; row++ {
			want := row>>uint(v)&1 == 1
			if got := Var(v).Eval(row); got != want {
				t.Fatalf("Var(%d).Eval(%d) = %v, want %v", v, row, got, want)
			}
		}
	}
}

func TestBooleanOps(t *testing.T) {
	err := quick.Check(func(a, b uint16) bool {
		f, g := Func16(a), Func16(b)
		for row := uint(0); row < 16; row++ {
			if f.And(g).Eval(row) != (f.Eval(row) && g.Eval(row)) {
				return false
			}
			if f.Or(g).Eval(row) != (f.Eval(row) || g.Eval(row)) {
				return false
			}
			if f.Xor(g).Eval(row) != (f.Eval(row) != g.Eval(row)) {
				return false
			}
			if f.Not().Eval(row) == f.Eval(row) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCofactors(t *testing.T) {
	err := quick.Check(func(a uint16, v0 uint8) bool {
		f := Func16(a)
		v := int(v0 % 4)
		c0, c1 := f.Cofactor0(v), f.Cofactor1(v)
		// Cofactors do not depend on v.
		if c0.DependsOn(v) || c1.DependsOn(v) {
			return false
		}
		// Shannon expansion reconstructs f.
		shannon := Var(v).And(c1).Or(Var(v).Not().And(c0))
		return shannon == f
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSupport(t *testing.T) {
	if Var0.Support() != 1 || Var3.Support() != 8 {
		t.Fatalf("variable supports wrong: %b %b", Var0.Support(), Var3.Support())
	}
	if False.Support() != 0 || True.SupportSize() != 0 {
		t.Fatal("constants must have empty support")
	}
	f := Var0.Xor(Var2)
	if f.Support() != 0b0101 {
		t.Fatalf("x0^x2 support = %b", f.Support())
	}
	if f.SupportSize() != 2 {
		t.Fatalf("x0^x2 support size = %d", f.SupportSize())
	}
}

func TestPermuteVars(t *testing.T) {
	// Swapping x0 and x1 maps Var0 to Var1.
	perm := [4]int{1, 0, 2, 3}
	if got := Var0.PermuteVars(perm); got != Var1 {
		t.Fatalf("permuted Var0 = %v, want %v", got, Var1)
	}
	// Permutation is a bijection on functions: applying perm and its
	// inverse round-trips.
	err := quick.Check(func(a uint16) bool {
		f := Func16(a)
		p := [4]int{2, 3, 1, 0}
		inv := [4]int{}
		for i, x := range p {
			inv[x] = i
		}
		return f.PermuteVars(p).PermuteVars(inv) == f
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlipVar(t *testing.T) {
	err := quick.Check(func(a uint16, v0 uint8) bool {
		f := Func16(a)
		v := int(v0 % 4)
		g := f.FlipVar(v)
		// Flipping twice is identity.
		if g.FlipVar(v) != f {
			return false
		}
		// g(x) = f(x with bit v flipped).
		for row := uint(0); row < 16; row++ {
			if g.Eval(row) != f.Eval(row^(1<<uint(v))) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestXorDecomposable(t *testing.T) {
	f := Var1.Xor(Var2.And(Var3))
	g, ok := f.IsXorDecomposable(1)
	if !ok {
		t.Fatal("x1 ^ (x2&x3) must be XOR-decomposable on x1")
	}
	if got := Var1.Xor(g); got != f {
		t.Fatalf("decomposition does not reconstruct: %v", got)
	}
	if _, ok := Var1.And(Var2).IsXorDecomposable(1); ok {
		t.Fatal("x1 & x2 is not XOR-decomposable on x1")
	}
}

func TestCubeTable(t *testing.T) {
	c := Cube{Lits: 0b0101, Phase: 0b0001} // x0 & !x2
	want := Var0.And(Var2.Not())
	if c.Table() != want {
		t.Fatalf("cube table %v, want %v", c.Table(), want)
	}
	if c.NumLits() != 2 {
		t.Fatalf("cube literal count %d", c.NumLits())
	}
	if (Cube{}).Table() != True {
		t.Fatal("empty cube must be the tautology")
	}
}

func TestISOPCoversExactly(t *testing.T) {
	// With an empty don't-care set, the ISOP must equal the function.
	err := quick.Check(func(a uint16) bool {
		f := Func16(a)
		cover, table := ISOP(f, False)
		return table == f && CoverTable(cover) == f
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestISOPWithDontCares(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		on := Func16(rng.Uint32())
		dc := Func16(rng.Uint32()) &^ on
		cover, table := ISOP(on, dc)
		if table != CoverTable(cover) {
			t.Fatal("reported table disagrees with cover")
		}
		// The cover must lie within the interval [on, on|dc].
		if on&^table != 0 {
			t.Fatalf("cover misses onset points: on=%v table=%v", on, table)
		}
		if table&^(on|dc) != 0 {
			t.Fatalf("cover exceeds the interval: table=%v", table)
		}
	}
}

func TestISOPIsReasonablyCompact(t *testing.T) {
	// For a function that is a single cube, ISOP must find one cube.
	f := Var0.And(Var1.Not()).And(Var3)
	cover, _ := ISOP(f, False)
	if len(cover) != 1 {
		t.Fatalf("single-cube function covered with %d cubes", len(cover))
	}
	if CoverLiterals(cover) != 3 {
		t.Fatalf("cube has %d literals, want 3", CoverLiterals(cover))
	}
}

func TestStringForms(t *testing.T) {
	if Var0.String() != "0xAAAA" {
		t.Fatalf("Var0 string %q", Var0.String())
	}
	c := Cube{Lits: 0b0011, Phase: 0b0010}
	if c.String() != "!x0·x1" {
		t.Fatalf("cube string %q", c.String())
	}
	if (Cube{}).String() != "1" {
		t.Fatal("empty cube renders as 1")
	}
}

func TestOnesAndConst(t *testing.T) {
	if False.Ones() != 0 || True.Ones() != 16 || Var0.Ones() != 8 {
		t.Fatal("popcounts wrong")
	}
	if !False.IsConst() || !True.IsConst() || Var0.IsConst() {
		t.Fatal("IsConst wrong")
	}
}

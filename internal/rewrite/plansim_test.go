package rewrite

import (
	"testing"

	"dacpara/internal/aig"
)

// TestReplaceSimMatchesReplace: the overlay rehearsal must predict the
// exact deletion count of the real Replace.
func TestReplaceSimMatchesReplace(t *testing.T) {
	build := func() (*aig.AIG, int32, aig.Lit) {
		a := aig.New()
		x, y, z := a.AddPI(), a.AddPI(), a.AddPI()
		xy := a.And(x, y)
		inner := a.And(xy, z)
		top := a.And(inner, x.Not())
		a.AddPO(top)
		a.AddPO(xy) // xy shared: survives inner's deletion
		return a, inner.Node(), xy
	}
	a, victim, repl := build()
	sim := newReplaceSim(a, nil)
	deleted, ok, conflict := sim.run(victim, repl, false)
	if !ok || conflict {
		t.Fatalf("sim failed: ok=%v conflict=%v", ok, conflict)
	}
	before := a.NumAnds()
	a.Replace(victim, repl, aig.ReplaceOptions{})
	actual := before - a.NumAnds()
	if deleted != actual {
		t.Fatalf("sim predicted %d deletions, actual %d", deleted, actual)
	}
	if err := a.Check(aig.CheckOptions{AllowDuplicates: true}); err != nil {
		t.Fatal(err)
	}
}

// TestReplaceSimPOOnly: a victim feeding only primary outputs.
func TestReplaceSimPOOnly(t *testing.T) {
	a := aig.New()
	x, y := a.AddPI(), a.AddPI()
	v := a.And(x, y)
	a.AddPO(v)
	a.AddPO(v.Not())
	sim := newReplaceSim(a, nil)
	deleted, ok, conflict := sim.run(v.Node(), x, false)
	if !ok || conflict {
		t.Fatal("sim failed")
	}
	if deleted != 1 {
		t.Fatalf("predicted %d deletions, want 1", deleted)
	}
}

// TestReplaceSimTrivialCascade: replacement literal that cancels inside a
// fanout (AND(v, x) with v := !x) must cascade in the rehearsal exactly
// as in Replace.
func TestReplaceSimTrivialCascade(t *testing.T) {
	a := aig.New()
	x, y, z := a.AddPI(), a.AddPI(), a.AddPI()
	v := a.And(y, z)
	f := a.And(v, x) // will become AND(!x, x) = const0
	top := a.And(f, y)
	a.AddPO(top)
	sim := newReplaceSim(a, nil)
	deleted, ok, conflict := sim.run(v.Node(), x.Not(), false)
	if !ok || conflict {
		t.Fatal("sim failed")
	}
	before := a.NumAnds()
	a.Replace(v.Node(), x.Not(), aig.ReplaceOptions{})
	actual := before - a.NumAnds()
	if deleted != actual {
		t.Fatalf("sim predicted %d, actual %d", deleted, actual)
	}
	if a.PO(0) != aig.LitFalse {
		t.Fatalf("PO %v, want const0", a.PO(0))
	}
}

// TestReplaceSimBudget: a victim with an enormous fanout exceeds the plan
// limit and must be rejected (ok=false) instead of locking the world.
func TestReplaceSimBudget(t *testing.T) {
	a := aig.New()
	x, y := a.AddPI(), a.AddPI()
	v := a.And(x, y)
	for i := 0; i < planLimit+10; i++ {
		pi := a.AddPI()
		a.AddPO(a.And(v, pi))
	}
	sim := newReplaceSim(a, nil)
	_, ok, conflict := sim.run(v.Node(), x, false)
	if conflict {
		t.Fatal("unexpected conflict")
	}
	if ok {
		t.Fatal("plan limit not enforced")
	}
}

// TestReplaceSimConflictPropagates: a denied lock inside the rehearsal
// surfaces as a conflict.
func TestReplaceSimConflictPropagates(t *testing.T) {
	a := aig.New()
	x, y, z := a.AddPI(), a.AddPI(), a.AddPI()
	v := a.And(x, y)
	top := a.And(v, z)
	a.AddPO(top)
	denied := top.Node()
	sim := newReplaceSim(a, func(id int32) bool { return id != denied })
	_, ok, conflict := sim.run(v.Node(), x, false)
	if ok || !conflict {
		t.Fatalf("expected conflict, got ok=%v conflict=%v", ok, conflict)
	}
}

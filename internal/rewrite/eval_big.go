package rewrite

import (
	"dacpara/internal/cut"
	"dacpara/internal/npn"
	"dacpara/internal/rewlib"
	"dacpara/internal/tt"
)

// evaluateBig scores the library structures for a 5/6-input cut and folds
// the best one into best. Large cuts are classified semi-canonically
// (npn.SemiCanon, memoized per worker) and their forests come from the
// attached BigLibrary; a configuration without one simply skips large
// cuts. The return value reports a lock conflict, on which the caller
// must abort the activity.
func (e *Evaluator) evaluateBig(root int32, c *cut.Cut, saved, minGain int, best *Candidate, lockFn func(int32) bool) (conflict bool) {
	big := e.Lib.Big
	if big == nil {
		return false
	}
	repr, tr := e.semiCache().Canon(c.TT)
	structs := big.ForRepr(repr)
	if len(structs) == 0 {
		return false
	}
	inv := tr.Inverse()
	conflicted := false
	var lf func(int32) bool
	if lockFn != nil {
		lf = func(id int32) bool {
			if !lockFn(id) {
				conflicted = true
				return false
			}
			return true
		}
	}
	nStr := e.Cfg.maxStructs(len(structs))
	for si := 0; si < nStr; si++ {
		_, _, nNew, ok := e.Scratch.instantiate(e.A, &structs[si], inv, c.LeafSlice(), root, lf, false, nil, nil)
		if conflicted {
			return true
		}
		if !ok {
			continue
		}
		gain := saved - nNew
		if gain < minGain {
			continue
		}
		if best.Kind == CandNone || gain > best.Gain {
			*best = Candidate{Root: root, RootVer: best.RootVer, Kind: CandStruct, Cut: *c,
				Class: rewlib.BigClass, Struct: si, Repr: repr, Gain: gain}
		}
	}
	return false
}

// resolveStruct re-resolves the stored structure of a CandStruct
// candidate against the authoritative cut function recomputed on the
// latest graph — the commit-time NPN revalidation. Classic candidates go
// through the dense 4-input classification; large-cut candidates compare
// semi-canonical representatives.
func (e *Evaluator) resolveStruct(cand *Candidate, c *cut.Cut, curTT tt.Func64) (*rewlib.Structure, npn.Transform6, bool) {
	if cand.Class == rewlib.BigClass {
		big := e.Lib.Big
		if big == nil {
			return nil, npn.Identity6, false
		}
		repr, tr := e.semiCache().Canon(curTT)
		if repr != cand.Repr {
			return nil, npn.Identity6, false
		}
		structs := big.ForRepr(repr)
		if cand.Struct >= len(structs) {
			return nil, npn.Identity6, false
		}
		return &structs[cand.Struct], tr.Inverse(), true
	}
	cls, structs, inv := e.Lib.ForFunc(curTT.Narrow16())
	if cls != cand.Class || cand.Struct >= len(structs) {
		return nil, npn.Identity6, false
	}
	return &structs[cand.Struct], inv.Wide6(), true
}

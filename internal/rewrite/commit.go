package rewrite

import (
	"dacpara/internal/aig"
	"dacpara/internal/cut"
	"dacpara/internal/tt"
)

// Status classifies the outcome of executing a candidate on the latest
// graph.
type Status int

// Execute outcomes. StatusStale and StatusNoGain are the paper's "missed
// optimization opportunities" — stored information that no longer holds on
// the current AIG; StatusConflict means a lock could not be acquired and
// the activity must abort and retry.
const (
	StatusCommitted Status = iota
	StatusStale
	StatusNoGain
	StatusHazard
	StatusConflict
)

func (s Status) String() string {
	switch s {
	case StatusCommitted:
		return "committed"
	case StatusStale:
		return "stale"
	case StatusNoGain:
		return "no-gain"
	case StatusHazard:
		return "hazard"
	case StatusConflict:
		return "conflict"
	}
	return "invalid"
}

// Locker acquires the exclusive lock of a node on behalf of the current
// activity, returning false on conflict. A nil Locker means serial
// execution: every acquisition trivially succeeds.
type Locker func(id int32) bool

// planLimit bounds the number of nodes one replacement may touch; beyond
// it the candidate is skipped rather than letting a single activity lock
// an unbounded region.
const planLimit = 2048

// Execute re-validates candidate cand against the latest AIG and, if it
// still yields an acceptable gain, commits the replacement. This is the
// paper's replacement operator (Section 4.4): the stored cut must still be
// a cut of the node (leaves alive, or re-enumerated and matched), the
// stored structure must still match the cut function's NPN class, and the
// gain is re-evaluated on the current graph before any mutation. All
// affected nodes are locked before the first mutation (cautious operator),
// so a conflict abort never needs rollback.
func (e *Evaluator) Execute(cm *cut.Manager, cand *Candidate, lock Locker) (gain int, st Status) {
	a := e.A
	root := cand.Root
	lk := func(id int32) bool { return lock == nil || lock(id) }
	if !lk(root) {
		return 0, StatusConflict
	}
	rn := a.N(root)
	if !rn.IsAnd() || rn.Version() != cand.RootVer {
		// The node was rewritten away (its ID possibly reused for new
		// logic) since evaluation: the stored information is outdated.
		return 0, StatusStale
	}

	// 1. Establish a valid cut on the latest graph.
	c := cand.Cut
	fresh := true
	for i := uint8(0); i < c.Size; i++ {
		if !lk(c.Leaves[i]) {
			return 0, StatusConflict
		}
		if a.N(c.Leaves[i]).Version() != c.LeafVer[i] {
			fresh = false
		}
	}
	if !fresh {
		// Some leaf was deleted (and its ID possibly reused): re-enumerate
		// on the current graph and match the stored leaf set against the
		// fresh cut set, as the paper prescribes for the Fig. 3 hazard.
		set, ok := refreshCuts(cm, root, lock, e.CutPool)
		if !ok {
			return 0, StatusConflict
		}
		matched := false
		for i := range set {
			if set[i].SameLeaves(&cand.Cut) {
				c = set[i]
				matched = true
				break
			}
		}
		if !matched {
			return 0, StatusStale
		}
	}

	// 2. Recompute the cut function on the current graph under locks. This
	// both revalidates that the leaf set still covers the cone and yields
	// the authoritative truth table for NPN matching.
	curTT, ok, conflict := e.coneTT(root, &c, lock)
	if conflict {
		return 0, StatusConflict
	}
	if !ok {
		return 0, StatusStale
	}

	// 3. Resolve the replacement literal plan for the current function,
	// locking every existing node the new logic will reuse and collecting
	// the references the new gates will add to existing nodes.
	var out aig.Lit
	outNew := false
	nNew := 0
	var newRefs []aig.Lit
	var buildStruct func(tryLock func(int32) bool) aig.Lit
	switch cand.Kind {
	case CandConst:
		if curTT != tt.False64 && curTT != tt.True64 {
			return 0, StatusStale
		}
		out = aig.LitFalse.XorCompl(curTT == tt.True64)
	case CandWire:
		wc := c
		wc.TT = curTT
		leaf, phase, isWire := wireFunc(&wc)
		if !isWire {
			return 0, StatusStale
		}
		out = aig.MakeLit(leaf, phase)
	case CandStruct:
		st, inv, okStruct := e.resolveStruct(cand, &c, curTT)
		if !okStruct {
			// The NPN class of the stored equivalent structure no longer
			// matches the cut's truth table (Section 4.4).
			return 0, StatusStale
		}
		conflicted := false
		var lockFn func(int32) bool
		if lock != nil {
			lockFn = func(id int32) bool {
				if !lock(id) {
					conflicted = true
					return false
				}
				return true
			}
		}
		var ok bool
		var outLevel int32
		out, outNew, nNew, outLevel, ok = e.Scratch.instantiateLevels(a, st, inv, c.LeafSlice(), root, lockFn, false, nil, &newRefs)
		if conflicted {
			return 0, StatusConflict
		}
		if !ok {
			return 0, StatusStale
		}
		if e.Cfg.PreserveDelay && outLevel > rn.Level() {
			return 0, StatusNoGain
		}
		buildStruct = func(tryLock func(int32) bool) aig.Lit {
			lit, _, _, ok := e.Scratch.instantiate(a, st, inv, c.LeafSlice(), root, nil, true, tryLock, nil)
			if !ok {
				panic("rewrite: planned structure failed to build")
			}
			return lit
		}
	default:
		return 0, StatusStale
	}

	// 4. Simulate the full replacement (fanout redirection, cascaded
	// simplifications, cone deletion) on a reference-count overlay,
	// locking every node it would touch, so the commit below mutates only
	// locked nodes and the gain is exact on the latest graph.
	sim := newReplaceSim(a, lock)
	for _, r := range newRefs {
		sim.delta[r.Node()]++
	}
	deleted, okSim, conflictSim := sim.run(root, out, outNew)
	switch {
	case conflictSim:
		return 0, StatusConflict
	case !okSim:
		return 0, StatusHazard
	}

	gain = deleted - nNew
	minGain := 1
	if e.Cfg.ZeroGain {
		minGain = 0
	}
	if gain < minGain && !e.TrustStoredGain {
		return gain, StatusNoGain
	}

	// 5. Commit: build the new gates, then redirect and delete. Every node
	// touched from here on is locked.
	var tryLock func(int32) bool
	if lock != nil {
		tryLock = func(id int32) bool { return lock(id) }
	}
	if buildStruct != nil {
		out = buildStruct(tryLock)
	}
	if out.Node() == root {
		return 0, StatusStale
	}
	a.Replace(root, out, aig.ReplaceOptions{CascadeMerge: lock == nil})
	return gain, StatusCommitted
}

// refreshCuts re-enumerates root's cuts under the activity's locks,
// recycling storage through the worker's pool.
func refreshCuts(cm *cut.Manager, root int32, lock Locker, pool *cut.Pool) ([]cut.Cut, bool) {
	visit := cut.Visitor(nil)
	if lock != nil {
		visit = cut.Visitor(lock)
	}
	return cm.RefreshP(root, visit, pool)
}

// coneTT recomputes the function of root over the cut's leaves by walking
// the cone on the current graph, locking every inner node. ok is false
// when the leaf set no longer covers the cone (a path escapes to a PI,
// the constant, or past the traversal budget). The budget is 64 nodes for
// classic 4-input cuts (matching the hardwired-K engine exactly) and
// wider for large cuts, whose cones are legitimately bigger.
func (e *Evaluator) coneTT(root int32, c *cut.Cut, lock Locker) (f tt.Func64, ok, conflict bool) {
	a := e.A
	leaves := c.LeafSlice()
	memo := e.Scratch.cone
	if memo == nil {
		memo = make(map[int32]tt.Func64, 64)
		e.Scratch.cone = memo
	}
	clear(memo)
	budget := 64
	if c.Size > 4 {
		budget = 512
	}
	count := 0
	var rec func(id int32) (tt.Func64, bool, bool)
	rec = func(id int32) (tt.Func64, bool, bool) {
		for i, l := range leaves {
			if l == id {
				return tt.Var64(i), true, false
			}
		}
		if v, hit := memo[id]; hit {
			return v, true, false
		}
		if count++; count > budget {
			return 0, false, false
		}
		if lock != nil && !lock(id) {
			return 0, false, true
		}
		n := a.N(id)
		if !n.IsAnd() {
			return 0, false, false
		}
		t0, ok0, cf0 := rec(n.Fanin0().Node())
		if !ok0 {
			return 0, false, cf0
		}
		t1, ok1, cf1 := rec(n.Fanin1().Node())
		if !ok1 {
			return 0, false, cf1
		}
		if n.Fanin0().Compl() {
			t0 = t0.Not()
		}
		if n.Fanin1().Compl() {
			t1 = t1.Not()
		}
		t := t0.And(t1)
		memo[id] = t
		return t, true, false
	}
	f, ok, conflict = rec(root)
	clear(memo)
	return f, ok, conflict
}

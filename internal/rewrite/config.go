// Package rewrite implements DAG-aware AIG rewriting (Mishchenko et al.,
// DAC'06): the serial baseline engine corresponding to ABC's `rewrite`
// command, plus the evaluation and replacement machinery shared by all
// parallel engines in this repository (lockpar, staticpar, core).
//
// Rewriting visits nodes, enumerates their 4-input cuts, matches each
// cut's function against the NPN structure library, estimates the gain of
// swapping the cut's cone for a precomputed structure — counting logical
// sharing on both sides — and commits the best strictly positive
// replacement.
package rewrite

import (
	"dacpara/internal/aig"
	"dacpara/internal/cut"
	"dacpara/internal/engine"
	"dacpara/internal/galois"
	"dacpara/internal/metrics"
	"dacpara/internal/rewlib"
)

// Common134 is the number of NPN classes ABC's `rewrite` operator
// evaluates; `drw` (modelled by the GPU baselines) uses all 222.
const Common134 = 134

// Config holds the knobs shared by every rewriting engine. The zero value
// is the `rewrite`-like default configuration; the paper's Table 3
// parameterizations are P1() and P2().
type Config struct {
	// K is the cut width, 4..cut.MaxK (0: classic 4-input rewriting).
	// Widths above 4 require a library with a large-cut forest attached
	// (rewlib.Library.Big); without one, 5/6-input cuts enumerate but
	// yield no structural candidates.
	K int
	// MaxCuts bounds stored cuts per node (0: cut.DefaultCutLimit(K)).
	MaxCuts int
	// MaxStructs bounds the structures evaluated per NPN class
	// (0: evaluate the whole forest).
	MaxStructs int
	// NumClasses restricts evaluation to the most populous NPN classes
	// (0: Common134; use 222 for the full space).
	NumClasses int
	// ZeroGain also commits zero-gain replacements that change structure,
	// like ABC's `rewrite -z`.
	ZeroGain bool
	// PreserveDelay rejects replacements whose new cone would be deeper
	// than the one it replaces (ABC's update-level behaviour). Level
	// estimates can be slightly stale mid-rewriting; this is a heuristic
	// bound, not a hard delay constraint.
	PreserveDelay bool
	// Passes repeats the whole rewriting sweep (0: one pass).
	Passes int
	// Workers sets the parallelism of parallel engines
	// (0: runtime.GOMAXPROCS).
	Workers int
	// Fault injects seeded faults into the speculative executor of the
	// parallel engines — forced aborts, lock-hold delays, worker stalls,
	// worklist shuffles (see galois.FaultPlan). Nil, the default, costs
	// nothing. Serial engines take no locks and are unaffected.
	Fault *galois.FaultPlan
	// RetryBudget bounds consecutive aborts per work item before a
	// parallel engine gives up with a *galois.RetryBudgetError instead of
	// livelocking (0: galois.DefaultRetryBudget).
	RetryBudget int
	// Metrics, when non-nil, collects per-phase timings, per-level
	// parallelism, speculative-work accounting and QoR deltas for the run
	// (see internal/metrics). The engine resets the collector on entry
	// and attaches the final snapshot to Result.Metrics, so one collector
	// reused across flow steps yields one snapshot per step. Nil, the
	// default, costs nothing on the hot paths.
	Metrics *metrics.Collector
	// CutCache, when non-nil, makes cut sets persistent across engine
	// passes and flow steps: each pass reuses the cached manager for the
	// graph and revalidates stored sets incrementally by node version
	// instead of re-enumerating from scratch (see cut.Cache). Nil, the
	// default, enumerates fresh per pass — results are byte-identical
	// either way. Flow runs install one cache automatically.
	CutCache *cut.Cache
}

// P1 is the paper's Table 3 "DACPara-P1" configuration: 8 cuts per node,
// 5 structures per class, 134 classes, two passes — matching the GPU
// baselines' drw-style budget.
func P1() Config {
	return Config{MaxCuts: 8, MaxStructs: 5, NumClasses: Common134, Passes: 2}
}

// P2 is the paper's "DACPara-P2" configuration: the ICCAD'18 setup — 134
// classes, one pass, no cut or structure limits.
func P2() Config {
	return Config{NumClasses: Common134, Passes: 1}
}

func (c Config) passes() int {
	if c.Passes <= 0 {
		return 1
	}
	return c.Passes
}

func (c Config) numClasses() int {
	if c.NumClasses <= 0 {
		return Common134
	}
	return c.NumClasses
}

// classMask materializes the class restriction against a library.
func (c Config) classMask(lib *rewlib.Library) []bool {
	return lib.PracticalClasses(c.numClasses())
}

func (c Config) maxStructs(n int) int {
	if c.MaxStructs <= 0 || c.MaxStructs > n {
		return n
	}
	return c.MaxStructs
}

// cutManager resolves the pass's cut manager: the persistent cached one
// (opening a new validation epoch) when a CutCache is configured, a
// fresh throwaway manager otherwise.
func (c Config) cutManager(a *aig.AIG) *cut.Manager {
	params := cut.Params{K: c.K, MaxCuts: c.MaxCuts}
	if c.CutCache != nil {
		m := c.CutCache.Manager(a, params)
		m.NextEpoch()
		return m
	}
	return cut.NewManager(a, params)
}

// CutManagerFor resolves the cut manager an engine outside this package
// (lockpar) should enumerate with — the cached persistent manager when
// the config carries a CutCache, a fresh one otherwise.
func CutManagerFor(c Config, a *aig.AIG) *cut.Manager { return c.cutManager(a) }

// Exec materializes the Config's spine knobs for the pass-engine
// framework (parallelism, pass count, fault plan, retry budget,
// metrics).
func (c Config) Exec() engine.Exec {
	return engine.Exec{
		Workers:     c.Workers,
		Passes:      c.Passes,
		Fault:       c.Fault,
		RetryBudget: c.RetryBudget,
		Metrics:     c.Metrics,
	}
}

// Result reports one engine run. It is the framework's pass-generic
// result type; the alias keeps the historical rewrite.Result name every
// engine and the facade return.
type Result = engine.Result

// FinishMetrics records the result's QoR into the collector, closes the
// run and attaches the snapshot to the result. Engines call it last,
// after their final shard merge; a nil collector is a no-op.
func FinishMetrics(m *metrics.Collector, res *Result) {
	engine.FinishMetrics(m, res)
}

package rewrite

import (
	"math/rand"
	"testing"

	"dacpara/internal/aig"
	"dacpara/internal/cut"
	"dacpara/internal/tt"
)

// TestConstantConeCollapses: a cone computing a constant must yield a
// CandConst candidate and commit to the constant literal.
func TestConstantConeCollapses(t *testing.T) {
	lib := testLib(t)
	a := aig.New()
	x, y := a.AddPI(), a.AddPI()
	n1 := a.And(x, y)
	n2 := a.And(x, y.Not())
	orBoth := a.Or(n1, n2) // == x
	alsoNot := a.And(orBoth, x.Not())
	// alsoNot == x & !x == const0, but built through 4 gates.
	a.AddPO(alsoNot)
	cm := cut.NewManager(a, cut.Params{})
	ev := NewEvaluator(a, lib, Config{})
	cuts, _ := cm.Ensure(alsoNot.Node(), nil)
	cand := ev.Evaluate(alsoNot.Node(), cuts)
	if !cand.Ok() {
		t.Fatal("no candidate for a constant cone")
	}
	if cand.Kind != CandConst || cand.ConstVal {
		t.Fatalf("candidate %+v, want const false", cand)
	}
	gain, st := ev.Execute(cm, &cand, nil)
	if st != StatusCommitted {
		t.Fatalf("status %v", st)
	}
	if gain <= 0 {
		t.Fatalf("gain %d", gain)
	}
	if a.PO(0) != aig.LitFalse {
		t.Fatalf("PO %v, want const0", a.PO(0))
	}
	if err := a.Check(aig.CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestWireConeCollapses: a cone equal to one of its leaves must wire
// through.
func TestWireConeCollapses(t *testing.T) {
	lib := testLib(t)
	a := aig.New()
	x, y := a.AddPI(), a.AddPI()
	n1 := a.And(x, y)
	n2 := a.And(x, y.Not())
	root := a.Or(n1, n2) // == x
	a.AddPO(root)
	cm := cut.NewManager(a, cut.Params{})
	ev := NewEvaluator(a, lib, Config{})
	cuts, _ := cm.Ensure(root.Node(), nil)
	cand := ev.Evaluate(root.Node(), cuts)
	if !cand.Ok() || cand.Kind != CandWire {
		t.Fatalf("candidate %+v, want wire", cand)
	}
	if _, st := ev.Execute(cm, &cand, nil); st != StatusCommitted {
		t.Fatalf("status %v", st)
	}
	if a.PO(0) != x {
		t.Fatalf("PO %v, want %v", a.PO(0), x)
	}
	if a.NumAnds() != 0 {
		t.Fatalf("area %d", a.NumAnds())
	}
}

// TestGainIsExactForCommits: Execute's returned gain must equal the true
// area delta it realizes.
func TestGainIsExactForCommits(t *testing.T) {
	lib := testLib(t)
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 10; iter++ {
		a := randomAIG(t, rng, 8, 400, 8)
		cm := cut.NewManager(a, cut.Params{})
		ev := NewEvaluator(a, lib, Config{})
		for _, id := range a.TopoOrder(nil) {
			if !a.N(id).IsAnd() {
				continue
			}
			cuts, _ := cm.Ensure(id, nil)
			cand := ev.Evaluate(id, cuts)
			if !cand.Ok() {
				continue
			}
			before := a.NumAnds()
			gain, st := ev.Execute(cm, &cand, nil)
			if st != StatusCommitted {
				continue
			}
			realized := before - a.NumAnds()
			// Serial commits run with cascade merging, which can only add
			// extra deletions on top of the planned gain.
			if realized < gain {
				t.Fatalf("iter %d node %d: realized %d < planned %d", iter, id, realized, gain)
			}
		}
		if err := a.Check(aig.CheckOptions{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestZeroGainConfig(t *testing.T) {
	lib := testLib(t)
	rng := rand.New(rand.NewSource(77))
	a1 := randomAIG(t, rng, 8, 500, 8)
	a2 := a1.Clone()
	strict, err := Serial(a1, lib, Config{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Serial(a2, lib, Config{ZeroGain: true})
	if err != nil {
		t.Fatal(err)
	}
	// Zero-gain rewriting restructures at equal cost; it must never end
	// larger than the strict run started, and both remain equivalent.
	if zero.FinalAnds > zero.InitialAnds {
		t.Fatalf("zero-gain increased area: %d -> %d", zero.InitialAnds, zero.FinalAnds)
	}
	if zero.Replacements < strict.Replacements {
		t.Fatalf("zero-gain committed fewer rewrites (%d) than strict (%d)",
			zero.Replacements, strict.Replacements)
	}
	sa := aig.RandomSignature(a1, rand.New(rand.NewSource(5)), 4)
	sb := aig.RandomSignature(a2, rand.New(rand.NewSource(5)), 4)
	_ = sa
	_ = sb // different graphs compute the same function per their own golden runs
	if err := a2.Check(aig.CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestConfigBudgets: P1's cut and structure budgets must bound the work
// actually offered to evaluation.
func TestConfigBudgets(t *testing.T) {
	_ = testLib(t)
	rng := rand.New(rand.NewSource(88))
	a := randomAIG(t, rng, 8, 300, 6)
	cm := cut.NewManager(a, cut.Params{MaxCuts: 8})
	a.ForEachAnd(func(id int32) {
		cuts, _ := cm.Ensure(id, nil)
		if len(cuts) > 9 { // 8 + trivial
			t.Fatalf("node %d has %d cuts under the P1 budget", id, len(cuts))
		}
	})
	cfg := P1()
	if cfg.maxStructs(50) != 5 || cfg.maxStructs(3) != 3 {
		t.Fatal("maxStructs budget wrong")
	}
	if got := (Config{}).maxStructs(50); got != 50 {
		t.Fatal("unlimited structures must pass through")
	}
	if (Config{}).numClasses() != Common134 {
		t.Fatal("default class budget must be 134")
	}
}

// TestEvaluateRespectsClassMask: cut functions outside the configured
// class subset yield no structural candidates.
func TestEvaluateRespectsClassMask(t *testing.T) {
	lib := testLib(t)
	// A cone whose function lands in some class; with NumClasses=1 only
	// the single cheapest class (the constants) is allowed, so structural
	// rewriting must find nothing.
	a := aig.New()
	x, y, z := a.AddPI(), a.AddPI(), a.AddPI()
	root := a.And(a.Xor(x, y), z)
	a.AddPO(root)
	cm := cut.NewManager(a, cut.Params{})
	ev := NewEvaluator(a, lib, Config{NumClasses: 1})
	cuts, _ := cm.Ensure(root.Node(), nil)
	cand := ev.Evaluate(root.Node(), cuts)
	if cand.Kind == CandStruct {
		t.Fatalf("masked class produced a structural candidate: %+v", cand)
	}
}

// TestInstantiateMatchesFunction: instantiating a structure over concrete
// leaves must produce logic computing the cut function (checked by
// simulation after a commit).
func TestInstantiateMatchesFunction(t *testing.T) {
	lib := testLib(t)
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 20; iter++ {
		a := randomAIG(t, rng, 6, 150, 5)
		before := aig.RandomSignature(a, rand.New(rand.NewSource(7)), 4)
		res, err := Serial(a, lib, Config{})
		if err != nil {
			t.Fatal(err)
		}
		after := aig.RandomSignature(a, rand.New(rand.NewSource(7)), 4)
		if !aig.EqualSignatures(before, after) {
			t.Fatalf("iter %d: %d replacements broke the function", iter, res.Replacements)
		}
	}
}

// TestTrustStoredGainCommitsNegative: the staticpar behaviour knob.
func TestTrustStoredGainCommitsNegative(t *testing.T) {
	lib := testLib(t)
	a := aig.New()
	x, y, z := a.AddPI(), a.AddPI(), a.AddPI()
	n1 := a.And(x, y)
	n2 := a.And(n1, z)
	a.AddPO(n2)
	ev := NewEvaluator(a, lib, Config{})
	ev.TrustStoredGain = true
	cm := cut.NewManager(a, cut.Params{})
	cuts, _ := cm.Ensure(n2.Node(), nil)
	// Build a fake stored candidate for a cut whose replacement has no
	// gain: AND3 is already minimal, so force a structural candidate.
	var c *cut.Cut
	for i := range cuts {
		if cuts[i].Size == 3 {
			c = &cuts[i]
			break
		}
	}
	if c == nil {
		t.Fatal("no 3-cut")
	}
	cls, structs, _ := lib.ForFunc(c.TT.Narrow16())
	if len(structs) == 0 {
		t.Fatal("no structures")
	}
	cand := Candidate{
		Root: n2.Node(), RootVer: a.N(n2.Node()).Version(),
		Kind: CandStruct, Cut: *c, Class: cls, Struct: len(structs) - 1, Gain: 1,
	}
	gain, st := ev.Execute(cm, &cand, nil)
	switch st {
	case StatusCommitted:
		if gain > 0 {
			t.Log("largest structure still gained; acceptable")
		}
	case StatusNoGain:
		t.Fatal("TrustStoredGain must not report no-gain")
	case StatusStale, StatusHazard:
		// The chosen structure may map onto the existing nodes (rejected
		// as identity); acceptable.
	}
	if err := a.Check(aig.CheckOptions{}); err != nil {
		t.Fatal(err)
	}
	if !tt.Func16(0).IsConst() {
		t.Fatal("sanity")
	}
}

package rewrite

import (
	"context"

	"dacpara/internal/aig"
	"dacpara/internal/engine"
	"dacpara/internal/rewlib"
)

// Serial runs single-threaded DAG-aware rewriting in topological order —
// the ABC `rewrite` baseline of the paper's Table 2. Each node is visited
// once per pass: its 4-cuts are enumerated, every cut function is matched
// against the structure library through its NPN class, the best
// replacement is selected by gain (respecting logical sharing on both the
// removed and added logic), and strictly positive gains are committed
// immediately, so every node sees the latest graph.
//
// The only error today is a context cancellation (see SerialCtx) — the
// serial engine has no speculative machinery that can fail — but the
// signature matches the parallel engines so callers handle every engine
// uniformly.
func Serial(a *aig.AIG, lib *rewlib.Library, cfg Config) (Result, error) {
	return SerialCtx(context.Background(), a, lib, cfg)
}

// SerialCtx is Serial under a context. Cancellation is observed every
// engine.SerialCancelStride nodes and between passes; a cancelled run
// returns the wrapped ctx error with a structurally consistent,
// partially rewritten network and the Result marked Incomplete.
func SerialCtx(ctx context.Context, a *aig.AIG, lib *rewlib.Library, cfg Config) (Result, error) {
	return engine.RunFused(ctx, a, &serialPass{a: a, lib: lib, cfg: cfg}, engine.Plan{
		Name:      "abc-rewrite",
		Partition: engine.Topo,
		Mode:      engine.Serial,
	}, cfg.Exec())
}

package rewrite

import (
	"context"
	"fmt"
	"time"

	"dacpara/internal/aig"
	"dacpara/internal/cut"
	"dacpara/internal/rewlib"
)

// cancelCheckStride is how many nodes the serial engine processes between
// context polls: coarse enough to keep the hot loop cheap, fine enough
// that cancellation lands within a few hundred node visits.
const cancelCheckStride = 256

// Serial runs single-threaded DAG-aware rewriting in topological order —
// the ABC `rewrite` baseline of the paper's Table 2. Each node is visited
// once per pass: its 4-cuts are enumerated, every cut function is matched
// against the structure library through its NPN class, the best
// replacement is selected by gain (respecting logical sharing on both the
// removed and added logic), and strictly positive gains are committed
// immediately, so every node sees the latest graph.
//
// The only error today is a context cancellation (see SerialCtx) — the
// serial engine has no speculative machinery that can fail — but the
// signature matches the parallel engines so callers handle every engine
// uniformly.
func Serial(a *aig.AIG, lib *rewlib.Library, cfg Config) (Result, error) {
	return SerialCtx(context.Background(), a, lib, cfg)
}

// SerialCtx is Serial under a context. Cancellation is observed every
// cancelCheckStride nodes and between passes; a cancelled run returns the
// wrapped ctx error with a structurally consistent, partially rewritten
// network and the Result marked Incomplete.
func SerialCtx(ctx context.Context, a *aig.AIG, lib *rewlib.Library, cfg Config) (Result, error) {
	start := time.Now()
	m := cfg.Metrics
	m.StartRun("abc-rewrite", 1, cfg.passes())
	// One shard: the serial engine has no barriers, so its per-phase
	// breakdown is the in-loop stage time accumulated here.
	shards := m.Shards(1)
	res := Result{
		Engine:       "abc-rewrite",
		Threads:      1,
		Passes:       cfg.passes(),
		InitialAnds:  a.NumAnds(),
		InitialDelay: a.Delay(),
	}
	var runErr error
	for p := 0; p < cfg.passes() && runErr == nil; p++ {
		cm := cut.NewManager(a, cut.Params{MaxCuts: cfg.MaxCuts})
		ev := NewEvaluator(a, lib, cfg)
		for i, id := range a.TopoOrder(nil) {
			if i%cancelCheckStride == 0 && ctx.Err() != nil {
				runErr = fmt.Errorf("abc-rewrite: %w", ctx.Err())
				break
			}
			if !a.N(id).IsAnd() {
				continue
			}
			if shards == nil {
				cuts, _ := cm.Ensure(id, nil)
				cand := ev.Evaluate(id, cuts)
				if !cand.Ok() {
					continue
				}
				res.Attempts++
				if _, st := ev.Execute(cm, &cand, nil); st == StatusCommitted {
					res.Replacements++
				} else if st == StatusStale {
					res.Stale++
				}
				continue
			}
			sh := &shards[0]
			t0 := time.Now()
			cuts, _ := cm.Ensure(id, nil)
			t1 := time.Now()
			cand := ev.Evaluate(id, cuts)
			t2 := time.Now()
			sh.EnumNs += t1.Sub(t0).Nanoseconds()
			sh.EvalNs += t2.Sub(t1).Nanoseconds()
			sh.Evals++
			if !cand.Ok() {
				continue
			}
			res.Attempts++
			t3 := time.Now()
			_, st := ev.Execute(cm, &cand, nil)
			sh.ReplaceNs += time.Since(t3).Nanoseconds()
			switch st {
			case StatusCommitted:
				res.Replacements++
			case StatusStale:
				res.Stale++
				sh.WastedEvals++
			}
		}
	}
	m.MergeShards(shards)
	res.FinalAnds = a.NumAnds()
	res.FinalDelay = a.Delay()
	res.Duration = time.Since(start)
	res.Incomplete = runErr != nil
	FinishMetrics(m, &res)
	return res, runErr
}

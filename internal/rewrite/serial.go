package rewrite

import (
	"time"

	"dacpara/internal/aig"
	"dacpara/internal/cut"
	"dacpara/internal/rewlib"
)

// Serial runs single-threaded DAG-aware rewriting in topological order —
// the ABC `rewrite` baseline of the paper's Table 2. Each node is visited
// once per pass: its 4-cuts are enumerated, every cut function is matched
// against the structure library through its NPN class, the best
// replacement is selected by gain (respecting logical sharing on both the
// removed and added logic), and strictly positive gains are committed
// immediately, so every node sees the latest graph.
//
// The error is always nil today — the serial engine has no speculative
// machinery that can fail — but the signature matches the parallel
// engines so callers handle every engine uniformly.
func Serial(a *aig.AIG, lib *rewlib.Library, cfg Config) (Result, error) {
	start := time.Now()
	m := cfg.Metrics
	m.StartRun("abc-rewrite", 1, cfg.passes())
	// One shard: the serial engine has no barriers, so its per-phase
	// breakdown is the in-loop stage time accumulated here.
	shards := m.Shards(1)
	res := Result{
		Engine:       "abc-rewrite",
		Threads:      1,
		Passes:       cfg.passes(),
		InitialAnds:  a.NumAnds(),
		InitialDelay: a.Delay(),
	}
	for p := 0; p < cfg.passes(); p++ {
		cm := cut.NewManager(a, cut.Params{MaxCuts: cfg.MaxCuts})
		ev := NewEvaluator(a, lib, cfg)
		for _, id := range a.TopoOrder(nil) {
			if !a.N(id).IsAnd() {
				continue
			}
			if shards == nil {
				cuts, _ := cm.Ensure(id, nil)
				cand := ev.Evaluate(id, cuts)
				if !cand.Ok() {
					continue
				}
				res.Attempts++
				if _, st := ev.Execute(cm, &cand, nil); st == StatusCommitted {
					res.Replacements++
				} else if st == StatusStale {
					res.Stale++
				}
				continue
			}
			sh := &shards[0]
			t0 := time.Now()
			cuts, _ := cm.Ensure(id, nil)
			t1 := time.Now()
			cand := ev.Evaluate(id, cuts)
			t2 := time.Now()
			sh.EnumNs += t1.Sub(t0).Nanoseconds()
			sh.EvalNs += t2.Sub(t1).Nanoseconds()
			sh.Evals++
			if !cand.Ok() {
				continue
			}
			res.Attempts++
			t3 := time.Now()
			_, st := ev.Execute(cm, &cand, nil)
			sh.ReplaceNs += time.Since(t3).Nanoseconds()
			switch st {
			case StatusCommitted:
				res.Replacements++
			case StatusStale:
				res.Stale++
				sh.WastedEvals++
			}
		}
	}
	m.MergeShards(shards)
	res.FinalAnds = a.NumAnds()
	res.FinalDelay = a.Delay()
	res.Duration = time.Since(start)
	FinishMetrics(m, &res)
	return res, nil
}

package rewrite

import (
	"math/rand"
	"testing"

	"dacpara/internal/aig"
	"dacpara/internal/npn"
	"dacpara/internal/rewlib"
)

// randomAIG builds a random redundant network: random AND trees over a
// few PIs with duplicated-but-restructured logic so rewriting has gains
// to find.
func randomAIG(t testing.TB, rng *rand.Rand, pis, gates, pos int) *aig.AIG {
	t.Helper()
	a := aig.New()
	lits := make([]aig.Lit, 0, pis+gates)
	for i := 0; i < pis; i++ {
		lits = append(lits, a.AddPI())
	}
	for len(lits) < pis+gates {
		x := lits[rng.Intn(len(lits))].XorCompl(rng.Intn(2) == 0)
		y := lits[rng.Intn(len(lits))].XorCompl(rng.Intn(2) == 0)
		var l aig.Lit
		switch rng.Intn(4) {
		case 0:
			l = a.And(x, y)
		case 1:
			l = a.Or(x, y)
		case 2:
			l = a.Xor(x, y)
		default:
			z := lits[rng.Intn(len(lits))]
			l = a.Mux(x, y, z)
		}
		if !l.IsConst() {
			lits = append(lits, l)
		}
	}
	for i := 0; i < pos; i++ {
		a.AddPO(lits[len(lits)-1-i%len(lits)].XorCompl(rng.Intn(2) == 0))
	}
	if err := a.Check(aig.CheckOptions{}); err != nil {
		t.Fatalf("generated AIG invalid: %v", err)
	}
	return a
}

func testLib(t testing.TB) *rewlib.Library {
	t.Helper()
	lib, err := rewlib.Build(npn.Shared(), rewlib.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestSerialPreservesFunction(t *testing.T) {
	lib := testLib(t)
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := randomAIG(t, rng, 8, 400, 8)
		before := aig.RandomSignature(a, rand.New(rand.NewSource(99)), 4)
		initial := a.NumAnds()
		res, err := Serial(a, lib, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Check(aig.CheckOptions{}); err != nil {
			t.Fatalf("seed %d: post-rewrite invariants: %v", seed, err)
		}
		after := aig.RandomSignature(a, rand.New(rand.NewSource(99)), 4)
		if !aig.EqualSignatures(before, after) {
			t.Fatalf("seed %d: function changed by rewriting", seed)
		}
		t.Logf("seed %d: %d -> %d ands (%d replacements, %d attempts, %d stale)",
			seed, initial, a.NumAnds(), res.Replacements, res.Attempts, res.Stale)
		if a.NumAnds() > initial {
			t.Fatalf("seed %d: area increased", seed)
		}
	}
}

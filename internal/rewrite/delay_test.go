package rewrite

import (
	"math/rand"
	"testing"
)

// TestPreserveDelayNeverDeepens: with PreserveDelay set, rewriting must
// not increase the network depth.
func TestPreserveDelayNeverDeepens(t *testing.T) {
	lib := testLib(t)
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := randomAIG(t, rng, 8, 500, 8)
		res, err := Serial(a, lib, Config{PreserveDelay: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalDelay > res.InitialDelay {
			t.Fatalf("seed %d: delay %d -> %d under PreserveDelay",
				seed, res.InitialDelay, res.FinalDelay)
		}
		if res.FinalAnds > res.InitialAnds {
			t.Fatalf("seed %d: area grew", seed)
		}
	}
}

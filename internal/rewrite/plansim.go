package rewrite

import "dacpara/internal/aig"

// replaceSim rehearses aig.Replace on a reference-count overlay without
// mutating the graph. It visits — and locks — exactly the nodes the real
// replacement will touch: the fanouts of the replaced node and their
// other fanins, the cascade of fanouts that simplify away, and the cone
// that dies when its references reach zero. Afterwards the commit can run
// without any possibility of a mid-mutation conflict, and the returned
// deletion count makes the gain exact.
type replaceSim struct {
	a       *aig.AIG
	lock    Locker
	delta   map[int32]int32
	touched map[int32]bool // fanouts already redirected in the rehearsal
	dead    map[int32]bool
	deleted int
	visits  int
}

func newReplaceSim(a *aig.AIG, lock Locker) *replaceSim {
	return &replaceSim{
		a:       a,
		lock:    lock,
		delta:   make(map[int32]int32, 32),
		touched: make(map[int32]bool, 8),
		dead:    make(map[int32]bool, 16),
	}
}

func (s *replaceSim) lk(id int32) bool { return s.lock == nil || s.lock(id) }

func (s *replaceSim) effRef(id int32) int32 {
	return s.a.N(id).Ref() + s.delta[id]
}

// run rehearses replacing node root with literal out (outNew means the
// literal will be a freshly created gate, unknown to the current graph).
// It returns the number of AND nodes the real replacement will delete.
func (s *replaceSim) run(root int32, out aig.Lit, outNew bool) (deleted int, ok, conflict bool) {
	if ok, conflict = s.simReplace(root, out, outNew); !ok {
		return 0, ok, conflict
	}
	return s.deleted, true, false
}

// simReplace models redirecting every reference of v to repl.
func (s *replaceSim) simReplace(v int32, repl aig.Lit, freshRepl bool) (ok, conflict bool) {
	if s.visits++; s.visits > planLimit {
		return false, false
	}
	if !freshRepl && !s.lk(repl.Node()) {
		return false, true
	}
	vn := s.a.N(v)
	for _, e := range vn.Fanouts() {
		if s.visits++; s.visits > planLimit {
			return false, false
		}
		if _, isPO := aig.IsPOFanout(e); isPO {
			s.delta[v]--
			if !freshRepl {
				s.delta[repl.Node()]++
			}
			continue
		}
		f := e
		if s.touched[f] {
			// The fanout is affected by more than one step of the cascade;
			// the overlay cannot track its intermediate fanin state, so
			// give up on this candidate (rare).
			return false, false
		}
		s.touched[f] = true
		if !s.lk(f) {
			return false, true
		}
		fn := s.a.N(f)
		l0, l1 := fn.Fanin0(), fn.Fanin1()
		var other aig.Lit
		var newLit aig.Lit
		if l0.Node() == v {
			newLit = repl.XorCompl(l0.Compl())
			other = l1
		} else {
			newLit = repl.XorCompl(l1.Compl())
			other = l0
		}
		if !s.lk(other.Node()) {
			return false, true
		}
		if !freshRepl {
			if res, triv := simplifiedAnd(s.a, newLit, other); triv {
				// f itself simplifies away: all its references move to
				// res, then f dies, releasing v and other.
				if ok, cf := s.simReplace(f, res, false); !ok {
					return false, cf
				}
				if s.effRef(f) != 0 {
					return false, false
				}
				if ok, cf := s.simDelete(f); !ok {
					return false, cf
				}
				continue
			}
		}
		// Plain rehash: f drops its reference to v and gains one on repl.
		s.delta[v]--
		if !freshRepl {
			s.delta[repl.Node()]++
		}
	}
	if s.effRef(v) == 0 && !s.dead[v] {
		if ok, conflict = s.simDelete(v); !ok {
			return false, conflict
		}
	}
	return true, false
}

// simDelete models deleteNodeCone: v dies, dereferencing its fanins and
// recursively deleting those that reach zero.
func (s *replaceSim) simDelete(v int32) (ok, conflict bool) {
	if s.dead[v] {
		return true, false
	}
	if s.visits++; s.visits > planLimit {
		return false, false
	}
	vn := s.a.N(v)
	if !vn.IsAnd() {
		return false, false
	}
	s.dead[v] = true
	s.deleted++
	for _, fl := range [2]aig.Lit{vn.Fanin0(), vn.Fanin1()} {
		fid := fl.Node()
		if !s.lk(fid) {
			return false, true
		}
		s.delta[fid]--
		if s.effRef(fid) == 0 && s.a.N(fid).IsAnd() && !s.dead[fid] {
			if ok, conflict = s.simDelete(fid); !ok {
				return ok, conflict
			}
		}
	}
	return true, false
}

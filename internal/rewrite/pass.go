package rewrite

import (
	"time"

	"dacpara/internal/aig"
	"dacpara/internal/cut"
	"dacpara/internal/engine"
	"dacpara/internal/rewlib"
)

// Pass adapts DAG-aware rewriting to the pass-engine framework: cut
// enumeration as the Enumerate hook, library matching as the lock-free
// Evaluate hook storing per-node Candidates, and Execute's
// revalidate-then-replace as the Commit hook. The same adapter serves
// every three-phase rewriting engine — DACPara's dynamic skeleton and
// the DAC'22/TCAD'23 static models — differing only in the two variant
// knobs below and the engine.Plan it runs under.
type Pass struct {
	A   *aig.AIG
	Lib *rewlib.Library
	Cfg Config

	// TrustStoredGain makes commits trust the evaluation-time gain
	// instead of re-evaluating it on the latest graph — the static GPU
	// models' behaviour (decisions from static global information).
	TrustStoredGain bool
	// SkipStaleLeaves rejects a stored candidate whenever any leaf of
	// its cut has been deleted by an earlier replacement — the DAC'22
	// (NovelRewrite) conditional-replacement rule.
	SkipStaleLeaves bool

	cm   *cut.Manager
	env  engine.Env
	evs  []*Evaluator
	prep []Candidate
}

var _ engine.Pass = (*Pass)(nil)

func (p *Pass) Begin(slots int, env engine.Env) {
	p.cm = p.Cfg.cutManager(p.A)
	p.env = env
	p.evs = make([]*Evaluator, slots)
	for w := range p.evs {
		p.evs[w] = NewEvaluator(p.A, p.Lib, p.Cfg)
		p.evs[w].TrustStoredGain = p.TrustStoredGain
		p.evs[w].CutPool = env.CutPool(w)
	}
	// Ensure the PI and constant cut sets once, serially: every
	// recursive enumeration bottoms out on them.
	p.cm.Ensure(0, nil)
	for _, pi := range p.A.PIs() {
		p.cm.Ensure(pi, nil)
	}
	// prepInfo: pre-replacement information per node ID ("the container
	// prepInfo with the same capacity as AIG").
	p.prep = make([]Candidate, p.A.Capacity())
}

func (p *Pass) Enumerate(worker int, id int32, lock engine.Locker) bool {
	if !p.A.N(id).IsAnd() {
		return true
	}
	_, ok := p.cm.EnsureP(id, cut.Visitor(lock), p.env.CutPool(worker))
	return ok
}

func (p *Pass) Evaluate(worker int, id int32) bool {
	p.prep[id] = Candidate{}
	if !p.A.N(id).IsAnd() {
		return false
	}
	cuts, ok := p.cm.Cuts(id)
	if !ok {
		return false
	}
	p.prep[id] = p.evs[worker].Evaluate(id, cuts)
	return true
}

func (p *Pass) Stored(id int32) bool { return p.prep[id].Ok() }

func (p *Pass) Commit(worker int, id int32, lock engine.Locker) engine.Status {
	cand := p.prep[id]
	if p.SkipStaleLeaves && !cand.Cut.Fresh(p.A) {
		return engine.StatusStale
	}
	_, st := p.evs[worker].Execute(p.cm, &cand, Locker(lock))
	switch st {
	case StatusConflict:
		return engine.StatusConflict
	case StatusCommitted:
		return engine.StatusCommitted
	case StatusStale:
		return engine.StatusStale
	}
	return engine.StatusNoGain
}

// serialPass is the ABC `rewrite` baseline as a fused framework pass:
// one visit per node in topological order, immediate commits, so every
// node sees the latest graph. Non-AND nodes are skipped at visit time —
// the worklist is the full topological order and nodes die mid-pass.
type serialPass struct {
	a   *aig.AIG
	lib *rewlib.Library
	cfg Config

	cm  *cut.Manager
	ev  *Evaluator
	env engine.Env
}

var _ engine.FusedPass = (*serialPass)(nil)

func (p *serialPass) Begin(_ int, env engine.Env) {
	p.cm = p.cfg.cutManager(p.a)
	p.ev = NewEvaluator(p.a, p.lib, p.cfg)
	p.ev.CutPool = env.CutPool(0)
	p.env = env
}

func (p *serialPass) Fuse(_ int, id int32, _ engine.Locker) engine.Status {
	if !p.a.N(id).IsAnd() {
		return engine.StatusSkip
	}
	if p.env.Shards == nil {
		cuts, _ := p.cm.EnsureP(id, nil, p.env.CutPool(0))
		cand := p.ev.Evaluate(id, cuts)
		if !cand.Ok() {
			return engine.StatusSkip
		}
		p.env.Attempts.Add(1)
		_, st := p.ev.Execute(p.cm, &cand, nil)
		switch st {
		case StatusCommitted:
			return engine.StatusCommitted
		case StatusStale:
			return engine.StatusStale
		}
		return engine.StatusNoGain
	}
	// The shard path attributes the in-loop stage time to the three
	// logical phases so the serial snapshot is comparable with the
	// parallel engines'.
	sh := &p.env.Shards[0]
	t0 := time.Now()
	cuts, _ := p.cm.EnsureP(id, nil, p.env.CutPool(0))
	t1 := time.Now()
	cand := p.ev.Evaluate(id, cuts)
	t2 := time.Now()
	sh.EnumNs += t1.Sub(t0).Nanoseconds()
	sh.EvalNs += t2.Sub(t1).Nanoseconds()
	sh.Evals++
	if !cand.Ok() {
		return engine.StatusSkip
	}
	p.env.Attempts.Add(1)
	t3 := time.Now()
	_, st := p.ev.Execute(p.cm, &cand, nil)
	sh.ReplaceNs += time.Since(t3).Nanoseconds()
	switch st {
	case StatusCommitted:
		return engine.StatusCommitted
	case StatusStale:
		sh.WastedEvals++
		return engine.StatusStale
	}
	return engine.StatusNoGain
}

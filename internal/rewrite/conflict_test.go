package rewrite

import (
	"math/rand"
	"testing"

	"dacpara/internal/aig"
	"dacpara/internal/cut"
	"dacpara/internal/rewlib"
)

type rewlibLibrary = rewlib.Library

// buildWithCandidate builds a deterministic random graph for the seed and
// locates the first committable candidate.
func buildWithCandidate(t *testing.T, lib *rewlibLibrary, seed int64) (*aig.AIG, *cut.Manager, *Evaluator, Candidate) {
	t.Helper()
	a := randomAIG(t, rand.New(rand.NewSource(seed)), 8, 300, 6)
	cm := cut.NewManager(a, cut.Params{})
	ev := NewEvaluator(a, lib, Config{})
	for _, id := range a.TopoOrder(nil) {
		if !a.N(id).IsAnd() {
			continue
		}
		cuts, _ := cm.Ensure(id, nil)
		c := ev.Evaluate(id, cuts)
		if c.Ok() {
			return a, cm, ev, c
		}
	}
	return a, cm, ev, Candidate{}
}

// TestConflictAbortLeavesGraphUntouched is the cautious-operator
// invariant that makes Galois-style speculation sound: if ANY lock
// acquisition during Execute fails — at whichever point in validation,
// planning or pre-commit — the graph must be completely unmodified. The
// test sweeps the failure point across every acquisition the replacement
// makes.
func TestConflictAbortLeavesGraphUntouched(t *testing.T) {
	lib := testLib(t)
	for seed := int64(0); seed < 6; seed++ {
		// Count acquisitions of a successful run on a fresh copy.
		a, cm, ev, cand := buildWithCandidate(t, lib, seed)
		if !cand.Ok() {
			continue
		}
		total := 0
		area := a.NumAnds()
		if _, st := ev.Execute(cm, &cand, func(id int32) bool { total++; return true }); st == StatusConflict {
			t.Fatal("all-grant locker conflicted")
		}
		if a.NumAnds() == area {
			continue // candidate skipped on re-evaluation; try next seed
		}
		// Re-run from an identical graph, failing acquisition k.
		for fail := 1; fail <= total; fail++ {
			b, cmB, evB, candB := buildWithCandidate(t, lib, seed)
			if !candB.Ok() {
				t.Fatal("deterministic rebuild lost the candidate")
			}
			before := aig.RandomSignature(b, rand.New(rand.NewSource(1)), 2)
			areaB := b.NumAnds()
			capB := b.Capacity()
			n := 0
			_, st := evB.Execute(cmB, &candB, func(id int32) bool {
				n++
				return n != fail
			})
			if st != StatusConflict {
				// Later acquisitions may not be reached on other code
				// paths; whatever happened must still be sound.
				if err := b.Check(aig.CheckOptions{}); err != nil {
					t.Fatalf("seed %d fail@%d (%v): %v", seed, fail, st, err)
				}
				continue
			}
			if b.NumAnds() != areaB {
				t.Fatalf("seed %d fail@%d: area changed %d -> %d", seed, fail, areaB, b.NumAnds())
			}
			if b.Capacity() != capB {
				t.Fatalf("seed %d fail@%d: capacity changed", seed, fail)
			}
			after := aig.RandomSignature(b, rand.New(rand.NewSource(1)), 2)
			if !aig.EqualSignatures(before, after) {
				t.Fatalf("seed %d fail@%d: function changed on abort", seed, fail)
			}
			if err := b.Check(aig.CheckOptions{}); err != nil {
				t.Fatalf("seed %d fail@%d: %v", seed, fail, err)
			}
		}
	}
}

package rewrite

import (
	"dacpara/internal/aig"
	"dacpara/internal/cut"
	"dacpara/internal/npn"
	"dacpara/internal/rewlib"
	"dacpara/internal/tt"
)

// CandKind discriminates what a candidate replaces the cone with.
type CandKind uint8

// Candidate kinds: a library structure, a constant, or a direct wire to a
// leaf (the latter two arise when rewriting proves the cone redundant).
const (
	CandNone CandKind = iota
	CandStruct
	CandConst
	CandWire
)

// Candidate is the pre-replacement information the evaluation stage
// computes for one node — the payload of the paper's prepInfo container:
// the chosen cut, its NPN class, the chosen equivalent structure, and the
// estimated gain.
type Candidate struct {
	Root int32
	// RootVer is Root's incarnation version at evaluation time: the
	// replacement stage rejects the candidate if the node was deleted —
	// and its ID possibly reused — in the meantime.
	RootVer uint32
	Kind    CandKind
	Cut     cut.Cut
	Class   int
	Struct  int // index into the class forest (CandStruct)

	// Repr is the semi-canonical representative for large-cut candidates
	// (Class == rewlib.BigClass); commit revalidates the recomputed cone
	// function against it.
	Repr tt.Func64

	// ConstVal is the replacement value for CandConst; WireLeaf/WirePhase
	// identify the leaf literal for CandWire.
	ConstVal  bool
	WireLeaf  int32
	WirePhase bool

	// Gain is the estimated node saving on the AIG the evaluation ran
	// against; replacement re-validates it on the latest graph.
	Gain int
}

// Ok reports whether the candidate proposes a change.
func (c *Candidate) Ok() bool { return c.Kind != CandNone }

// Scratch holds per-worker evaluation state so the lock-free evaluation
// stage never shares mutable data between threads (the paper's
// thread-local copies of MFFC bookkeeping).
type Scratch struct {
	delta map[int32]int32
	cone  map[int32]tt.Func64
	vals  []aig.Lit
	virt  []bool
	lvls  []int32
}

// NewScratch allocates evaluation scratch state.
func NewScratch() *Scratch {
	return &Scratch{delta: make(map[int32]int32, 64)}
}

// coneSavings estimates how many AND nodes die if root's cut cone is
// replaced: a trial recursive dereference over a thread-local overlay of
// the shared reference counts (the counts themselves are only read, so the
// evaluation stage needs no locks). Logical sharing is respected: cone
// nodes referenced from outside survive and are not counted.
func (s *Scratch) coneSavings(a *aig.AIG, root int32, c *cut.Cut) int {
	clear(s.delta)
	var rec func(id int32) int
	rec = func(id int32) int {
		count := 1
		n := a.N(id)
		for _, f := range [2]aig.Lit{n.Fanin0(), n.Fanin1()} {
			fid := f.Node()
			fn := a.N(fid)
			if !fn.IsAnd() || c.Contains(fid) {
				continue
			}
			r := fn.Ref() + s.delta[fid] - 1
			s.delta[fid]--
			if r == 0 {
				count += rec(fid)
			}
		}
		return count
	}
	return rec(root)
}

// instantiate resolves a structure over concrete cut leaves against the
// current graph: every structure gate either maps to an existing node
// (free, thanks to logical sharing) or is counted as a node to create.
//
// inv is the inverse NPN transform: structure input i is driven by leaf
// inv.Perm[i], complemented per inv.Flip, and the output is complemented
// per inv.Neg.
//
// When lock is non-nil it is invoked on every existing node the structure
// would reuse (and must succeed — a false return aborts with ok=false).
// When build is true the virtual gates are actually created (the caller
// must already hold all locks; tryLock filters reused IDs). When refs is
// non-nil, every reference a new gate would add to an existing node is
// appended to it — the seed for the replacement overlay simulation.
//
// outNew reports that the output gate is freshly created, in which case
// out is only meaningful in build mode.
//
// A structure that resolves any gate to root itself is rejected: reusing
// the node under replacement would cycle the graph (it is also the
// "nothing changes" case when it is the output).
func (s *Scratch) instantiate(a *aig.AIG, st *rewlib.Structure, inv npn.Transform6,
	leaves []int32, root int32, lock func(int32) bool, build bool,
	tryLock func(int32) bool, refs *[]aig.Lit) (out aig.Lit, outNew bool, nNew int, ok bool) {
	out, outNew, nNew, _, ok = s.instantiateLevels(a, st, inv, leaves, root, lock, build, tryLock, refs)
	return out, outNew, nNew, ok
}

// instantiateLevels is instantiate, additionally estimating the level
// (depth) the structure's output will have, for delay-preserving mode.
// Levels of existing nodes may be slightly stale after rewriting; the
// estimate is a heuristic bound, like ABC's update-level option.
func (s *Scratch) instantiateLevels(a *aig.AIG, st *rewlib.Structure, inv npn.Transform6,
	leaves []int32, root int32, lock func(int32) bool, build bool,
	tryLock func(int32) bool, refs *[]aig.Lit) (out aig.Lit, outNew bool, nNew int, outLevel int32, ok bool) {

	if cap(s.vals) < len(st.Nodes) {
		s.vals = make([]aig.Lit, len(st.Nodes)*2+8)
		s.virt = make([]bool, len(st.Nodes)*2+8)
		s.lvls = make([]int32, len(st.Nodes)*2+8)
	}
	vals := s.vals[:len(st.Nodes)]
	virt := s.virt[:len(st.Nodes)]
	lvls := s.lvls[:len(st.Nodes)]

	// get maps a structure literal to (graph literal, virtual?, level).
	get := func(l rewlib.SLit) (lit aig.Lit, virtual bool, level int32, ok bool) {
		compl := l&1 == 1
		base := l &^ 1
		if _, isConst := base.IsConst(); isConst {
			return aig.LitFalse.XorCompl(compl), false, 0, true
		}
		if v, isIn := base.IsInput(); isIn {
			li := int(inv.Perm[v])
			if li >= len(leaves) {
				return 0, false, 0, false
			}
			phase := inv.Flip>>uint(v)&1 == 1
			return aig.MakeLit(leaves[li], phase != compl), false, a.N(leaves[li]).Level(), true
		}
		k := base.AndIndex()
		return vals[k].XorCompl(compl), virt[k], lvls[k], true
	}

	addRef := func(l aig.Lit, virtual bool) {
		if refs != nil && !virtual && !l.IsConst() {
			*refs = append(*refs, l)
		}
	}
	for k, g := range st.Nodes {
		l0, v0, lv0, ok0 := get(g.In0)
		l1, v1, lv1, ok1 := get(g.In1)
		if !ok0 || !ok1 {
			return 0, false, 0, 0, false
		}
		newLevel := 1 + max32(lv0, lv1)
		if v0 || v1 {
			// A fanin is itself new: this gate must be new too.
			virt[k] = true
			lvls[k] = newLevel
			nNew++
			addRef(l0, v0)
			addRef(l1, v1)
			if build {
				vals[k] = a.AndWith(l0, l1, tryLock)
			}
			continue
		}
		if lit, simp := simplifiedAnd(a, l0, l1); simp {
			if lit.Node() == root {
				return 0, false, 0, 0, false
			}
			if lock != nil && !lit.IsConst() && !lock(lit.Node()) {
				return 0, false, 0, 0, false
			}
			vals[k], virt[k], lvls[k] = lit, false, a.N(lit.Node()).Level()
			continue
		}
		if lit, found := a.Lookup(l0, l1); found {
			if lit.Node() == root {
				return 0, false, 0, 0, false
			}
			if lock != nil && !lock(lit.Node()) {
				return 0, false, 0, 0, false
			}
			vals[k], virt[k], lvls[k] = lit, false, a.N(lit.Node()).Level()
			continue
		}
		virt[k] = true
		lvls[k] = newLevel
		nNew++
		addRef(l0, false)
		addRef(l1, false)
		if build {
			vals[k] = a.AndWith(l0, l1, tryLock)
		}
	}
	lit, outVirt, outLvl, okOut := get(st.Out)
	if !okOut {
		return 0, false, 0, 0, false
	}
	if inv.Neg {
		lit = lit.Not()
	}
	if !outVirt && lit.Node() == root {
		return 0, false, 0, 0, false
	}
	return lit, outVirt, nNew, outLvl, true
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// simplifiedAnd applies the trivial AND rules without touching the strash.
func simplifiedAnd(a *aig.AIG, f0, f1 aig.Lit) (aig.Lit, bool) {
	switch {
	case f0 == aig.LitFalse || f1 == aig.LitFalse:
		return aig.LitFalse, true
	case f0 == aig.LitTrue:
		return f1, true
	case f1 == aig.LitTrue:
		return f0, true
	case f0 == f1:
		return f0, true
	case f0 == f1.Not():
		return aig.LitFalse, true
	}
	return 0, false
}

// Evaluator runs the evaluation stage for one worker: it owns the scratch
// state and the configuration-derived restrictions.
type Evaluator struct {
	A       *aig.AIG
	Lib     *rewlib.Library
	Cfg     Config
	Scratch *Scratch

	// TrustStoredGain makes Execute commit candidates without re-checking
	// that the gain is still positive on the latest graph — the "static
	// global information" behaviour of the GPU baselines, which the
	// staticpar engine models (replacements may realize zero or negative
	// gain).
	TrustStoredGain bool

	// CutPool is the worker slot's cut-storage pool, used by Execute's
	// commit-time re-enumeration. Nil degrades to plain allocation.
	CutPool *cut.Pool

	mask []bool
	semi *npn.SemiCache
}

// semiCache returns the evaluator's semi-canonicalization memo,
// allocating it on first use (only large-cut configurations ever need
// one).
func (e *Evaluator) semiCache() *npn.SemiCache {
	if e.semi == nil {
		e.semi = npn.NewSemiCache()
	}
	return e.semi
}

// NewEvaluator builds a per-worker evaluator.
func NewEvaluator(a *aig.AIG, lib *rewlib.Library, cfg Config) *Evaluator {
	return &Evaluator{A: a, Lib: lib, Cfg: cfg, Scratch: NewScratch(), mask: cfg.classMask(lib)}
}

// Evaluate computes the best replacement candidate for node root from its
// stored cut set. It performs no graph mutation and takes no locks: this
// is the paper's completely lock-free evaluation operator (safe because
// the evaluation stage never runs concurrently with graph mutation).
func (e *Evaluator) Evaluate(root int32, cuts []cut.Cut) Candidate {
	cand, _ := e.EvaluateLocked(root, cuts, nil)
	return cand
}

// EvaluateLocked is Evaluate for fused-operator engines (ICCAD'18): lock
// is invoked on every existing node whose fanout list the evaluation
// scans, so the evaluation may run while other activities mutate the
// graph. conflict=true means a lock could not be taken and the activity
// must abort.
func (e *Evaluator) EvaluateLocked(root int32, cuts []cut.Cut, lock Locker) (_ Candidate, conflict bool) {
	best := Candidate{Root: root, RootVer: e.A.N(root).Version(), Kind: CandNone}
	minGain := 1
	if e.Cfg.ZeroGain {
		minGain = 0
	}
	conflicted := false
	var lockFn func(int32) bool
	if lock != nil {
		lockFn = func(id int32) bool {
			if !lock(id) {
				conflicted = true
				return false
			}
			return true
		}
	}
	a := e.A
	for ci := range cuts {
		c := &cuts[ci]
		// Structural rewriting needs 3- and 4-input cuts; the collapse
		// checks below (constant or single-leaf cones) also pay off on
		// 2-cuts.
		if c.Size < 2 || !c.Fresh(a) {
			continue
		}
		saved := e.Scratch.coneSavings(a, root, c)
		if saved < minGain {
			continue // even deleting everything cannot reach the bar
		}
		// Collapsing cases: the cut function is constant or a single leaf.
		if c.TT == tt.False64 || c.TT == tt.True64 {
			if best.Kind == CandNone || saved > best.Gain {
				best = Candidate{Root: root, RootVer: best.RootVer, Kind: CandConst, Cut: *c, ConstVal: c.TT == tt.True64, Gain: saved}
			}
			continue
		}
		if leaf, phase, isWire := wireFunc(c); isWire {
			if best.Kind == CandNone || saved > best.Gain {
				best = Candidate{Root: root, RootVer: best.RootVer, Kind: CandWire, Cut: *c, WireLeaf: leaf, WirePhase: phase, Gain: saved}
			}
			continue
		}
		if c.Size < 3 {
			continue
		}
		if c.Size > 4 {
			if e.evaluateBig(root, c, saved, minGain, &best, lockFn) {
				return best, true
			}
			continue
		}
		// A cut of Size <= 4 never depends on the upper variables, so the
		// narrow table is exact and the classic 4-input library applies.
		cls, structs, inv4 := e.Lib.ForFunc(c.TT.Narrow16())
		if !e.mask[cls] {
			continue
		}
		inv := inv4.Wide6()
		nStr := e.Cfg.maxStructs(len(structs))
		for si := 0; si < nStr; si++ {
			_, _, nNew, ok := e.Scratch.instantiate(a, &structs[si], inv, c.LeafSlice(), root, lockFn, false, nil, nil)
			if conflicted {
				return best, true
			}
			if !ok {
				continue
			}
			gain := saved - nNew
			if gain < minGain {
				continue
			}
			if best.Kind == CandNone || gain > best.Gain {
				best = Candidate{Root: root, RootVer: best.RootVer, Kind: CandStruct, Cut: *c, Class: cls, Struct: si, Gain: gain}
			}
		}
	}
	return best, false
}

// wireFunc reports whether the cut function equals a single leaf variable
// (possibly complemented), returning that leaf.
func wireFunc(c *cut.Cut) (leaf int32, phase bool, ok bool) {
	for v := 0; v < int(c.Size); v++ {
		if c.TT == tt.Var64(v) {
			return c.Leaves[v], false, true
		}
		if c.TT == tt.Var64(v).Not() {
			return c.Leaves[v], true, true
		}
	}
	return 0, false, false
}

package rewlib

import (
	"sort"
	"sync"

	"dacpara/internal/tt"
)

// BigClass is the Candidate class sentinel rewriting uses for large-cut
// candidates: big classes are keyed by semi-canonical representative
// (tt.Func64), not by a dense 4-input class index.
const BigClass = -1

// DefaultBigPerClass bounds the forest kept per large class. Large-cut
// evaluation is far heavier per structure than the 4-input loop, so the
// default is modest.
const DefaultBigPerClass = 16

// BigLibrary is the large-cut structure forest: semi-canonical
// representative -> structures implementing it. Unlike the dense 4-input
// Library, the 6-variable space cannot be enumerated, so the forest is
// populated from two sources: a precomputed dacpara-rewlib/v1 file
// (ReadFile) and on-demand synthesis for classes the file does not cover.
// Both sources run the same deterministic synthesizer, so a preloaded
// library is purely an acceleration — results do not depend on whether a
// class came from disk or was synthesized live.
//
// BigLibrary is safe for concurrent use; on-demand synthesis for the same
// representative may race benignly (both compute the identical forest,
// one wins the cache slot).
type BigLibrary struct {
	maxPerClass int

	mu     sync.RWMutex
	forest map[tt.Func64][]Structure
}

// NewBigLibrary creates an empty large-cut library. maxPerClass <= 0
// means DefaultBigPerClass.
func NewBigLibrary(maxPerClass int) *BigLibrary {
	if maxPerClass <= 0 {
		maxPerClass = DefaultBigPerClass
	}
	return &BigLibrary{maxPerClass: maxPerClass, forest: make(map[tt.Func64][]Structure, 1024)}
}

// ForRepr returns the forest of the semi-canonical representative repr,
// synthesizing and caching it on first use. The returned slice must not
// be modified.
func (b *BigLibrary) ForRepr(repr tt.Func64) []Structure {
	b.mu.RLock()
	s, ok := b.forest[repr]
	b.mu.RUnlock()
	if ok {
		return s
	}
	s = synthesizeAll64(repr, MaxInputs, b.maxPerClass)
	b.mu.Lock()
	if prior, ok := b.forest[repr]; ok {
		s = prior
	} else {
		b.forest[repr] = s
	}
	b.mu.Unlock()
	return s
}

// Preload installs a forest for repr, typically from a library file. An
// empty forest is legal (the class is known to have no usable structure).
// It returns false — without installing — when any structure fails
// functional verification against repr, so a corrupt or adversarial file
// can never inject wrong logic.
func (b *BigLibrary) Preload(repr tt.Func64, structs []Structure) bool {
	for i := range structs {
		if structs[i].Func64() != repr {
			return false
		}
	}
	b.mu.Lock()
	b.forest[repr] = structs
	b.mu.Unlock()
	return true
}

// Classes returns the cached representatives in ascending order — the
// deterministic iteration the library writer serializes in.
func (b *BigLibrary) Classes() []tt.Func64 {
	b.mu.RLock()
	out := make([]tt.Func64, 0, len(b.forest))
	for r := range b.forest {
		out = append(out, r)
	}
	b.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of cached classes.
func (b *BigLibrary) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.forest)
}

package rewlib

import (
	"math/rand"
	"sync"
	"testing"

	"dacpara/internal/npn"
	"dacpara/internal/tt"
)

// TestSynthesizeAll64Correct checks the synthesizer on random 5- and
// 6-variable functions: every emitted structure implements the function,
// the forest is deduplicated, sorted by node count, and capped.
func TestSynthesizeAll64Correct(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	var in [MaxInputs]tt.Func64
	for v := range in {
		in[v] = tt.Var64(v)
	}
	for iter := 0; iter < 60; iter++ {
		f := tt.Func64(rng.Uint64())
		if iter%2 == 0 {
			f = f.Cofactor0(5)
		}
		const cap = 6
		structs := synthesizeAll64(f, MaxInputs, cap)
		if len(structs) == 0 {
			t.Fatalf("no structure for %v", f)
		}
		if len(structs) > cap {
			t.Fatalf("forest of %d exceeds cap %d", len(structs), cap)
		}
		seen := map[string]bool{}
		for si := range structs {
			s := &structs[si]
			if got := s.Eval64(in); got != f {
				t.Fatalf("structure %d computes %v, want %v", si, got, f)
			}
			if si > 0 && structs[si-1].NumNodes() > s.NumNodes() {
				t.Fatalf("forest not sorted by size at %d", si)
			}
			key := structKey(s)
			if seen[key] {
				t.Fatalf("duplicate structure %d", si)
			}
			seen[key] = true
		}
	}
}

func structKey(s *Structure) string {
	b := make([]byte, 0, 4*len(s.Nodes)+2)
	for _, n := range s.Nodes {
		b = append(b, byte(n.In0), byte(n.In0>>8), byte(n.In1), byte(n.In1>>8))
	}
	return string(append(b, byte(s.Out), byte(s.Out>>8)))
}

// TestSynthesizeAll64Deterministic: two independent synthesis runs of the
// same representative must produce identical forests — the foundation of
// the generator's reproducibility guarantee.
func TestSynthesizeAll64Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	for iter := 0; iter < 40; iter++ {
		f := tt.Func64(rng.Uint64())
		a := synthesizeAll64(f, MaxInputs, DefaultBigPerClass)
		b := synthesizeAll64(f, MaxInputs, DefaultBigPerClass)
		if len(a) != len(b) {
			t.Fatalf("forest sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if structKey(&a[i]) != structKey(&b[i]) {
				t.Fatalf("structure %d differs between runs", i)
			}
		}
	}
}

// TestBigLibraryOnDemand: ForRepr synthesizes missing classes, caches
// them, and stays consistent under concurrent lookups.
func TestBigLibraryOnDemand(t *testing.T) {
	b := NewBigLibrary(4)
	rng := rand.New(rand.NewSource(149))
	var reprs []tt.Func64
	for len(reprs) < 8 {
		r, _ := npn.SemiCanon(tt.Func64(rng.Uint64()))
		reprs = append(reprs, r)
	}
	var wg sync.WaitGroup
	results := make([][]Structure, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = b.ForRepr(reprs[g%len(reprs)])
		}()
	}
	wg.Wait()
	for g := 0; g < 16; g++ {
		want := b.ForRepr(reprs[g%len(reprs)])
		if len(results[g]) != len(want) || len(want) == 0 || len(want) > 4 {
			t.Fatalf("goroutine %d saw %d structures, steady state %d", g, len(results[g]), len(want))
		}
	}
	if b.Len() != len(uniqueReprs(reprs)) {
		t.Fatalf("library holds %d classes, want %d", b.Len(), len(uniqueReprs(reprs)))
	}
	cls := b.Classes()
	for i := 1; i < len(cls); i++ {
		if cls[i-1] >= cls[i] {
			t.Fatal("Classes() not sorted")
		}
	}
}

func uniqueReprs(rs []tt.Func64) []tt.Func64 {
	seen := map[tt.Func64]bool{}
	var out []tt.Func64
	for _, r := range rs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// TestBigLibraryPreloadPriority: a preloaded forest wins over on-demand
// synthesis for its class; a wrong-function forest is rejected and leaves
// the class untouched.
func TestBigLibraryPreloadPriority(t *testing.T) {
	repr, _ := npn.SemiCanon(tt.Func64(0x123456789abcdef0))
	good := synthesizeAll64(repr, MaxInputs, 8)
	if len(good) < 2 {
		t.Fatalf("need at least two structures, have %d", len(good))
	}
	b := NewBigLibrary(8)
	if !b.Preload(repr, good[:1]) {
		t.Fatal("valid preload rejected")
	}
	if got := b.ForRepr(repr); len(got) != 1 || structKey(&got[0]) != structKey(&good[0]) {
		t.Fatalf("preloaded forest not served: %d structures", len(got))
	}
	// Wrong function: must be rejected, and the installed forest stays.
	other, _ := npn.SemiCanon(tt.Func64(0x00ff00ff00ff00f1))
	if other == repr {
		t.Skip("collision between probe classes")
	}
	if b.Preload(other, good[:1]) {
		t.Fatal("wrong-function preload accepted")
	}
	if got := b.ForRepr(repr); len(got) != 1 {
		t.Fatalf("rejection disturbed installed class: %d structures", len(got))
	}
}

package rewlib

import (
	"sort"

	"dacpara/internal/tt"
)

// builder64 is the 6-variable counterpart of sbuilder: it constructs one
// Structure over Func64 tables with builder-local structural hashing and
// function memoization. The 4-input builder is kept separate and
// untouched so the classic library stays bit-identical; this mirror only
// serves the large-cut classes.
type builder64 struct {
	nodes  []SNode
	strash map[uint32]SLit
	memo   map[tt.Func64]SLit
	nv     int
}

func newBuilder64(nv int) *builder64 {
	b := &builder64{strash: map[uint32]SLit{}, memo: map[tt.Func64]SLit{}, nv: nv}
	b.memo[tt.False64] = SConstFalse
	for v := 0; v < nv; v++ {
		b.memo[tt.Var64(v)] = SInput(v)
	}
	return b
}

func (b *builder64) lookupMemo(f tt.Func64) (SLit, bool) {
	if l, ok := b.memo[f]; ok {
		return l, true
	}
	if l, ok := b.memo[f.Not()]; ok {
		return l.not(), true
	}
	return 0, false
}

func (b *builder64) and(l0, l1 SLit) SLit {
	switch {
	case l0 == SConstFalse || l1 == SConstFalse:
		return SConstFalse
	case l0 == SConstTrue:
		return l1
	case l1 == SConstTrue:
		return l0
	case l0 == l1:
		return l0
	case l0 == l1.not():
		return SConstFalse
	}
	if l0 > l1 {
		l0, l1 = l1, l0
	}
	key := uint32(l0)<<16 | uint32(l1)
	if l, ok := b.strash[key]; ok {
		return l
	}
	b.nodes = append(b.nodes, SNode{In0: l0, In1: l1})
	l := sAnd(len(b.nodes) - 1)
	b.strash[key] = l
	return l
}

func (b *builder64) or(l0, l1 SLit) SLit { return b.and(l0.not(), l1.not()).not() }
func (b *builder64) xor(l0, l1 SLit) SLit {
	return b.or(b.and(l0, l1.not()), b.and(l0.not(), l1))
}
func (b *builder64) mux(s, t, e SLit) SLit {
	return b.or(b.and(s, t), b.and(s.not(), e))
}

// finish packages the builder state into a Structure rooted at out,
// garbage-collecting unreachable gates.
func (b *builder64) finish(out SLit) Structure {
	used := make([]bool, len(b.nodes))
	var mark func(SLit)
	mark = func(l SLit) {
		k := l.AndIndex()
		if k < 0 || used[k] {
			return
		}
		used[k] = true
		mark(b.nodes[k].In0)
		mark(b.nodes[k].In1)
	}
	mark(out)
	remap := make([]SLit, len(b.nodes))
	var packed []SNode
	fix := func(l SLit) SLit {
		if k := l.AndIndex(); k >= 0 {
			return remap[k].Compl(l.compl())
		}
		return l
	}
	for k, n := range b.nodes {
		if !used[k] {
			continue
		}
		packed = append(packed, SNode{In0: fix(n.In0), In1: fix(n.In1)})
		remap[k] = sAnd(len(packed) - 1)
	}
	return Structure{Nodes: packed, Out: fix(out)}
}

// policy64 mirrors policy for the 6-variable decomposer.
type policy64 struct {
	order    []int
	xorFirst bool
	complOut bool
}

// maxGates64 bounds one large structure; 6-input cones are legitimately
// bigger than 4-input ones.
const maxGates64 = 64

// synthesize64 builds one structure for f under the given policy.
func synthesize64(f tt.Func64, nv int, p policy64) (Structure, bool) {
	b := newBuilder64(nv)
	target := f
	if p.complOut {
		target = f.Not()
	}
	out, ok := b.synth(target, p, 0)
	if !ok {
		return Structure{}, false
	}
	if p.complOut {
		out = out.not()
	}
	return b.finish(out), true
}

// synth recursively decomposes f: single-literal AND/OR extraction, then
// XOR extraction, then Shannon/MUX expansion — the same ladder as the
// 4-input builder with a deeper recursion allowance.
func (b *builder64) synth(f tt.Func64, p policy64, depth int) (SLit, bool) {
	if l, ok := b.lookupMemo(f); ok {
		return l, true
	}
	if len(b.nodes) > maxGates64 || depth > 12 {
		return 0, false
	}
	rec := func(g tt.Func64) (SLit, bool) { return b.synth(g, p, depth+1) }

	for _, v := range p.order {
		if !f.DependsOn(v) {
			continue
		}
		c0, c1 := f.Cofactor0(v), f.Cofactor1(v)
		x := SInput(v)
		switch {
		case c0 == tt.False64: // f = x & c1
			g, ok := rec(c1)
			if !ok {
				return 0, false
			}
			return b.memoize(f, b.and(x, g)), true
		case c1 == tt.False64: // f = !x & c0
			g, ok := rec(c0)
			if !ok {
				return 0, false
			}
			return b.memoize(f, b.and(x.not(), g)), true
		case c0 == tt.True64: // f = !x | c1
			g, ok := rec(c1)
			if !ok {
				return 0, false
			}
			return b.memoize(f, b.or(x.not(), g)), true
		case c1 == tt.True64: // f = x | c0
			g, ok := rec(c0)
			if !ok {
				return 0, false
			}
			return b.memoize(f, b.or(x, g)), true
		}
	}
	if p.xorFirst {
		for _, v := range p.order {
			if g, ok := f.IsXorDecomposable(v); ok && f.DependsOn(v) {
				gl, ok := rec(g)
				if !ok {
					return 0, false
				}
				return b.memoize(f, b.xor(SInput(v), gl)), true
			}
		}
	}
	for _, v := range p.order {
		if !f.DependsOn(v) {
			continue
		}
		t, ok := rec(f.Cofactor1(v))
		if !ok {
			return 0, false
		}
		e, ok := rec(f.Cofactor0(v))
		if !ok {
			return 0, false
		}
		return b.memoize(f, b.mux(SInput(v), t, e)), true
	}
	if f == tt.True64 {
		return SConstTrue, true
	}
	return SConstFalse, true
}

func (b *builder64) memoize(f tt.Func64, l SLit) SLit {
	b.memo[f] = l
	return l
}

// factorISOP64 builds a structure by algebraically factoring an
// irredundant cover of f (or of its complement with the output inverted).
func factorISOP64(f tt.Func64, nv int, compl bool) (Structure, bool) {
	target := f
	if compl {
		target = f.Not()
	}
	cover, table := tt.ISOP64(target, tt.False64, nv)
	if table != target {
		return Structure{}, false
	}
	b := newBuilder64(nv)
	out := b.factor(cover)
	if compl {
		out = out.not()
	}
	s := b.finish(out)
	if s.Func64() != f {
		return Structure{}, false
	}
	return s, true
}

// factor recursively divides a cover by its most frequent literal.
func (b *builder64) factor(cover []tt.Cube64) SLit {
	if len(cover) == 0 {
		return SConstFalse
	}
	if len(cover) == 1 {
		return b.cubeAnd(cover[0])
	}
	var count [MaxInputs][2]int
	for _, c := range cover {
		for v := 0; v < MaxInputs; v++ {
			if c.Lits>>uint(v)&1 == 1 {
				count[v][c.Phase>>uint(v)&1]++
			}
		}
	}
	bestV, bestP, bestN := -1, 0, 1
	for v := 0; v < MaxInputs; v++ {
		for p := 0; p < 2; p++ {
			if count[v][p] > bestN {
				bestV, bestP, bestN = v, p, count[v][p]
			}
		}
	}
	if bestV < 0 {
		mid := len(cover) / 2
		return b.or(b.factor(cover[:mid]), b.factor(cover[mid:]))
	}
	var quotient, remainder []tt.Cube64
	for _, c := range cover {
		if c.Lits>>uint(bestV)&1 == 1 && int(c.Phase>>uint(bestV)&1) == bestP {
			q := c
			q.Lits &^= 1 << uint(bestV)
			q.Phase &^= 1 << uint(bestV)
			quotient = append(quotient, q)
		} else {
			remainder = append(remainder, c)
		}
	}
	lit := SInput(bestV).Compl(bestP == 0)
	qf := b.and(lit, b.factor(quotient))
	if len(remainder) == 0 {
		return qf
	}
	return b.or(qf, b.factor(remainder))
}

func (b *builder64) cubeAnd(c tt.Cube64) SLit {
	out := SConstTrue
	for v := 0; v < MaxInputs; v++ {
		if c.Lits>>uint(v)&1 == 0 {
			continue
		}
		out = b.and(out, SInput(v).Compl(c.Phase>>uint(v)&1 == 0))
	}
	return out
}

// varOrders64 returns the deterministic set of variable preference orders
// the large-cut policies explore: rotations of four base interleavings of
// the first nv variables. Full permutation enumeration (720 orders at
// nv=6) buys little over this spread and costs 30x the synthesis time.
func varOrders64(nv int) [][]int {
	bases := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0},
		{0, 2, 4, 1, 3, 5},
		{1, 4, 0, 3, 5, 2},
	}
	seen := map[string]bool{}
	var out [][]int
	for _, base := range bases {
		var proj []int
		for _, v := range base {
			if v < nv {
				proj = append(proj, v)
			}
		}
		for r := 0; r < nv; r++ {
			ord := make([]int, nv)
			for i := range ord {
				ord[i] = proj[(i+r)%nv]
			}
			k := ""
			for _, v := range ord {
				k += string(rune('0' + v))
			}
			if !seen[k] {
				seen[k] = true
				out = append(out, ord)
			}
		}
	}
	return out
}

// synthesizeAll64 runs every 6-variable policy on f and returns the
// deduplicated, verified forest ranked by size. Structures that fail
// functional verification against f are dropped (they cannot occur absent
// a builder bug, but the forest must never propagate one).
func synthesizeAll64(f tt.Func64, nv, maxPerClass int) []Structure {
	var all []Structure
	seen := map[string]bool{}
	add := func(s Structure, ok bool) {
		if !ok || s.Func64() != f {
			return
		}
		k := s.key()
		if !seen[k] {
			seen[k] = true
			all = append(all, s)
		}
	}
	for _, order := range varOrders64(nv) {
		for _, xorFirst := range [2]bool{true, false} {
			for _, complOut := range [2]bool{false, true} {
				add(synthesize64(f, nv, policy64{order: order, xorFirst: xorFirst, complOut: complOut}))
			}
		}
	}
	add(factorISOP64(f, nv, false))
	add(factorISOP64(f, nv, true))
	sort.SliceStable(all, func(i, j int) bool { return len(all[i].Nodes) < len(all[j].Nodes) })
	if maxPerClass > 0 && len(all) > maxPerClass {
		all = all[:maxPerClass]
	}
	return all
}

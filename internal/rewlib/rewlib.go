// Package rewlib builds the precomputed structure library ("Structure
// Manager") used by DAG-aware rewriting: for each of the 222 NPN classes
// of 4-input functions, a forest of alternative AIG structures
// implementing the class representative.
//
// ABC ships an offline-enumerated forest; this package synthesizes an
// equivalent one at startup by running a family of decomposition policies
// (single-literal AND/OR extraction, XOR extraction, Shannon/MUX
// expansion, and ISOP-based algebraic factoring) over every canonical
// function, under all variable preference orders and output phases, then
// deduplicating and ranking the resulting DAGs by node count. Structures
// within one DAG share subfunctions through builder-local structural
// hashing, mirroring the shared-node forest of ABC's library.
package rewlib

import (
	"fmt"
	"sort"

	"dacpara/internal/npn"
	"dacpara/internal/tt"
)

// SLit is a literal inside a Structure: 2*index + complement, where index
// 0 is constant false, 1..6 are the inputs x0..x5, and 7+k is AND node k.
// The input band is sized for the 6-variable ceiling of large-cut
// rewriting; 4-input structures simply never reference x4 or x5.
type SLit uint16

// MaxInputs is the input capacity of a structure (the large-cut ceiling).
const MaxInputs = 6

// sAndBase is the node index of the first AND gate.
const sAndBase = 1 + MaxInputs

// Structure literal constants for the constant node and inputs.
const (
	SConstFalse SLit = 0
	SConstTrue  SLit = 1
)

// SInput returns the structure literal of input variable v (0..5).
func SInput(v int) SLit { return SLit(2 * (1 + v)) }

func (l SLit) index() int    { return int(l >> 1) }
func (l SLit) compl() bool   { return l&1 == 1 }
func (l SLit) not() SLit     { return l ^ 1 }
func (l SLit) isInput() bool { i := l.index(); return i >= 1 && i <= MaxInputs }

// IsInput reports whether the literal refers to one of the inputs,
// returning the variable number.
func (l SLit) IsInput() (int, bool) {
	if l.isInput() {
		return l.index() - 1, true
	}
	return 0, false
}

// IsConst reports whether the literal is a constant, returning its value.
func (l SLit) IsConst() (bool, bool) {
	if l.index() == 0 {
		return l.compl(), true
	}
	return false, false
}

// AndIndex returns the AND-node index of an internal literal, or -1.
func (l SLit) AndIndex() int {
	if i := l.index(); i >= sAndBase {
		return i - sAndBase
	}
	return -1
}

// sAnd returns the literal of AND node k.
func sAnd(k int) SLit { return SLit(2 * (sAndBase + k)) }

// Compl returns the literal with phase conditionally flipped.
func (l SLit) Compl(c bool) SLit {
	if c {
		return l ^ 1
	}
	return l
}

// SNode is one AND gate of a structure.
type SNode struct {
	In0, In1 SLit
}

// Structure is a DAG of AND gates over at most six inputs, with a
// designated output literal. Nodes are topologically ordered: fanins of
// Nodes[k] refer only to inputs, constants, or Nodes[<k].
type Structure struct {
	Nodes []SNode
	Out   SLit
}

// NumNodes returns the AND-gate count of the structure.
func (s *Structure) NumNodes() int { return len(s.Nodes) }

// Eval computes the structure's function when input v carries table in[v].
// Only structures confined to the first four inputs may use it.
func (s *Structure) Eval(in [4]tt.Func16) tt.Func16 {
	var wide [MaxInputs]tt.Func64
	for v := range in {
		wide[v] = in[v].Wide()
	}
	return s.Eval64(wide).Narrow16()
}

// Eval64 computes the structure's function when input v carries table
// in[v], over the 6-variable domain.
func (s *Structure) Eval64(in [MaxInputs]tt.Func64) tt.Func64 {
	vals := make([]tt.Func64, len(s.Nodes))
	fetch := func(l SLit) tt.Func64 {
		var v tt.Func64
		switch {
		case l.index() == 0:
			v = tt.False64
		case l.isInput():
			v = in[l.index()-1]
		default:
			v = vals[l.index()-sAndBase]
		}
		if l.compl() {
			v = v.Not()
		}
		return v
	}
	for k, n := range s.Nodes {
		vals[k] = fetch(n.In0).And(fetch(n.In1))
	}
	return fetch(s.Out)
}

// Func returns the function of a 4-input structure over the plain
// variables.
func (s *Structure) Func() tt.Func16 {
	return s.Func64().Narrow16()
}

// Func64 returns the structure's function over the plain variables of the
// 6-variable domain.
func (s *Structure) Func64() tt.Func64 {
	var in [MaxInputs]tt.Func64
	for v := range in {
		in[v] = tt.Var64(v)
	}
	return s.Eval64(in)
}

// key serializes the structure for deduplication.
func (s *Structure) key() string {
	b := make([]byte, 0, 4*len(s.Nodes)+2)
	for _, n := range s.Nodes {
		b = append(b, byte(n.In0>>8), byte(n.In0), byte(n.In1>>8), byte(n.In1))
	}
	b = append(b, byte(s.Out>>8), byte(s.Out))
	return string(b)
}

// Library is the per-class structure forest. It is immutable after Build
// (except for the optional Big attachment) and safe for concurrent use.
type Library struct {
	npn     *npn.Manager
	structs [][]Structure // by class index

	// Big, when non-nil, provides the large-cut (5/6-input) forest keyed
	// by semi-canonical representative. The classic 4-input classes above
	// are untouched by it.
	Big *BigLibrary
}

// WithBig returns a copy of the library with the large-cut forest
// attached. The receiver is not modified, so a shared 4-input library can
// be specialized per configuration without races.
func (l *Library) WithBig(b *BigLibrary) *Library {
	cp := *l
	cp.Big = b
	return &cp
}

// Params configure library construction.
type Params struct {
	// MaxPerClass bounds the number of structures kept per class;
	// 0 keeps every distinct structure the policies produce.
	MaxPerClass int
}

// Build synthesizes the library. It returns an error if any generated
// structure fails functional verification against its class
// representative (which would indicate a bug, not bad input).
func Build(m *npn.Manager, p Params) (*Library, error) {
	lib := &Library{npn: m, structs: make([][]Structure, m.NumClasses())}
	for _, cls := range m.Classes() {
		structs := synthesizeAll(cls.Repr, p.MaxPerClass)
		for i := range structs {
			if got := structs[i].Func(); got != cls.Repr {
				return nil, fmt.Errorf("rewlib: class %s structure %d computes %s", cls.Repr, i, got)
			}
		}
		lib.structs[cls.Index] = structs
	}
	return lib, nil
}

// Structures returns the forest of class cls, smallest structures first.
func (l *Library) Structures(cls int) []Structure { return l.structs[cls] }

// NPN returns the classification the library was built against.
func (l *Library) NPN() *npn.Manager { return l.npn }

// ForFunc returns the class index, the structures implementing the
// canonical form of f, and the inverse transform mapping structure inputs
// and output onto f's variables.
func (l *Library) ForFunc(f tt.Func16) (cls int, structs []Structure, inv npn.Transform) {
	cls = l.npn.ClassIndex(f)
	return cls, l.structs[cls], l.npn.ToCanon(f).Inverse()
}

// PracticalClasses returns a class-index membership mask selecting the n
// classes whose minimal implementation is cheapest (fewest AND gates),
// ties broken by larger orbit. ABC's `rewrite` evaluates a practical
// subset of 134 of the 222 classes while `drw` uses all of them; cheap
// classes are the ones that actually occur in synthesized netlists
// (parities, majorities, simple control cones), so minimal structure cost
// is the natural reproduction of that subset.
func (l *Library) PracticalClasses(n int) []bool {
	type entry struct {
		cls  int
		cost int
		size int
	}
	entries := make([]entry, len(l.structs))
	for i, forest := range l.structs {
		cost := 1 << 20
		if len(forest) > 0 {
			cost = forest[0].NumNodes() // forests are sorted by size
		}
		entries[i] = entry{cls: i, cost: cost, size: l.npn.Classes()[i].Size}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].cost != entries[b].cost {
			return entries[a].cost < entries[b].cost
		}
		if entries[a].size != entries[b].size {
			return entries[a].size > entries[b].size
		}
		return entries[a].cls < entries[b].cls
	})
	mask := make([]bool, len(l.structs))
	for i := 0; i < n && i < len(entries); i++ {
		mask[entries[i].cls] = true
	}
	return mask
}

// MaxStructures returns the largest per-class forest size, the bound a
// "use all structures" configuration effectively evaluates.
func (l *Library) MaxStructures() int {
	m := 0
	for _, s := range l.structs {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// synthesizeAll runs every decomposition policy on f and returns the
// deduplicated forest ranked by size.
func synthesizeAll(f tt.Func16, maxPerClass int) []Structure {
	var all []Structure
	seen := map[string]bool{}
	add := func(s Structure, ok bool) {
		if !ok {
			return
		}
		k := s.key()
		if !seen[k] {
			seen[k] = true
			all = append(all, s)
		}
	}
	for _, order := range varOrders {
		for _, xorFirst := range [2]bool{true, false} {
			for _, complOut := range [2]bool{false, true} {
				add(synthesize(f, policy{order: order, xorFirst: xorFirst, complOut: complOut}))
			}
		}
	}
	add(factorISOP(f, false))
	add(factorISOP(f, true))
	sort.SliceStable(all, func(i, j int) bool { return len(all[i].Nodes) < len(all[j].Nodes) })
	if maxPerClass > 0 && len(all) > maxPerClass {
		all = all[:maxPerClass]
	}
	return all
}

var varOrders = [][4]int{
	{0, 1, 2, 3}, {1, 2, 3, 0}, {2, 3, 0, 1}, {3, 0, 1, 2},
	{0, 2, 1, 3}, {1, 3, 2, 0}, {3, 1, 0, 2}, {2, 0, 3, 1},
	{0, 3, 2, 1}, {3, 2, 1, 0}, {1, 0, 3, 2}, {2, 1, 0, 3},
}

type policy struct {
	order    [4]int
	xorFirst bool
	complOut bool
}

//go:build !linux

package rewlib

import "os"

// mapFile reads a library file wholesale on platforms without the mmap
// fast path.
func mapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}

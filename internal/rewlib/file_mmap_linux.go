//go:build linux

package rewlib

import (
	"math"
	"os"
	"syscall"
)

// mapFile memory-maps a library file read-only for decoding; the returned
// cleanup unmaps it. Mapping failures (unusual filesystems, empty files)
// fall back to a plain read so loading never depends on mmap support.
func mapFile(path string) ([]byte, func(), error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, nil, err
	}
	if size := st.Size(); size > 0 && size <= math.MaxInt32 {
		if data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE); err == nil {
			return data, func() { syscall.Munmap(data) }, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}

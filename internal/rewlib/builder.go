package rewlib

import "dacpara/internal/tt"

// sbuilder constructs one Structure with builder-local structural hashing
// and function memoization, so repeated subfunctions share gates.
type sbuilder struct {
	nodes  []SNode
	strash map[uint32]SLit
	memo   map[tt.Func16]SLit
}

func newBuilder() *sbuilder {
	b := &sbuilder{strash: map[uint32]SLit{}, memo: map[tt.Func16]SLit{}}
	b.memo[tt.False] = SConstFalse
	for v := 0; v < 4; v++ {
		b.memo[tt.Var(v)] = SInput(v)
	}
	return b
}

func (b *sbuilder) lookupMemo(f tt.Func16) (SLit, bool) {
	if l, ok := b.memo[f]; ok {
		return l, true
	}
	if l, ok := b.memo[f.Not()]; ok {
		return l.not(), true
	}
	return 0, false
}

// and creates (or reuses) an AND gate over two literals.
func (b *sbuilder) and(l0, l1 SLit) SLit {
	switch {
	case l0 == SConstFalse || l1 == SConstFalse:
		return SConstFalse
	case l0 == SConstTrue:
		return l1
	case l1 == SConstTrue:
		return l0
	case l0 == l1:
		return l0
	case l0 == l1.not():
		return SConstFalse
	}
	if l0 > l1 {
		l0, l1 = l1, l0
	}
	key := uint32(l0)<<16 | uint32(l1)
	if l, ok := b.strash[key]; ok {
		return l
	}
	b.nodes = append(b.nodes, SNode{In0: l0, In1: l1})
	l := sAnd(len(b.nodes) - 1)
	b.strash[key] = l
	return l
}

func (b *sbuilder) or(l0, l1 SLit) SLit { return b.and(l0.not(), l1.not()).not() }
func (b *sbuilder) xor(l0, l1 SLit) SLit {
	return b.or(b.and(l0, l1.not()), b.and(l0.not(), l1))
}
func (b *sbuilder) mux(s, t, e SLit) SLit {
	return b.or(b.and(s, t), b.and(s.not(), e))
}

// finish packages the builder state into a Structure rooted at out.
func (b *sbuilder) finish(out SLit) Structure {
	// Garbage-collect gates unreachable from out, preserving topological
	// order, so alternative policies that explored dead ends still yield
	// minimal serializations.
	used := make([]bool, len(b.nodes))
	var mark func(SLit)
	mark = func(l SLit) {
		k := l.AndIndex()
		if k < 0 || used[k] {
			return
		}
		used[k] = true
		mark(b.nodes[k].In0)
		mark(b.nodes[k].In1)
	}
	mark(out)
	remap := make([]SLit, len(b.nodes))
	var packed []SNode
	fix := func(l SLit) SLit {
		if k := l.AndIndex(); k >= 0 {
			return remap[k].Compl(l.compl())
		}
		return l
	}
	for k, n := range b.nodes {
		if !used[k] {
			continue
		}
		packed = append(packed, SNode{In0: fix(n.In0), In1: fix(n.In1)})
		remap[k] = sAnd(len(packed) - 1)
	}
	return Structure{Nodes: packed, Out: fix(out)}
}

// synthesize builds one structure for f under the given policy. ok is
// false when recursion exceeded the size guard.
func synthesize(f tt.Func16, p policy) (Structure, bool) {
	b := newBuilder()
	target := f
	if p.complOut {
		target = f.Not()
	}
	out, ok := b.synth(target, p, 0)
	if !ok {
		return Structure{}, false
	}
	if p.complOut {
		out = out.not()
	}
	return b.finish(out), true
}

const maxGates = 40

// synth recursively decomposes f. Policies differ in which variable is
// preferred for extraction and whether XOR extraction is attempted before
// MUX expansion.
func (b *sbuilder) synth(f tt.Func16, p policy, depth int) (SLit, bool) {
	if l, ok := b.lookupMemo(f); ok {
		return l, true
	}
	if len(b.nodes) > maxGates || depth > 8 {
		return 0, false
	}
	rec := func(g tt.Func16) (SLit, bool) { return b.synth(g, p, depth+1) }

	// 1. Single-literal AND/OR extraction: peel variables that appear as
	// top-level conjuncts or disjuncts.
	for _, v := range p.order {
		if !f.DependsOn(v) {
			continue
		}
		c0, c1 := f.Cofactor0(v), f.Cofactor1(v)
		x := SInput(v)
		switch {
		case c0 == tt.False: // f = x & c1
			g, ok := rec(c1)
			if !ok {
				return 0, false
			}
			return b.memoize(f, b.and(x, g)), true
		case c1 == tt.False: // f = !x & c0
			g, ok := rec(c0)
			if !ok {
				return 0, false
			}
			return b.memoize(f, b.and(x.not(), g)), true
		case c0 == tt.True: // f = !x | c1
			g, ok := rec(c1)
			if !ok {
				return 0, false
			}
			return b.memoize(f, b.or(x.not(), g)), true
		case c1 == tt.True: // f = x | c0
			g, ok := rec(c0)
			if !ok {
				return 0, false
			}
			return b.memoize(f, b.or(x, g)), true
		}
	}
	// 2. XOR extraction.
	if p.xorFirst {
		for _, v := range p.order {
			if g, ok := f.IsXorDecomposable(v); ok && f.DependsOn(v) {
				gl, ok := rec(g)
				if !ok {
					return 0, false
				}
				return b.memoize(f, b.xor(SInput(v), gl)), true
			}
		}
	}
	// 3. Shannon/MUX expansion on the first supported variable.
	for _, v := range p.order {
		if !f.DependsOn(v) {
			continue
		}
		t, ok := rec(f.Cofactor1(v))
		if !ok {
			return 0, false
		}
		e, ok := rec(f.Cofactor0(v))
		if !ok {
			return 0, false
		}
		return b.memoize(f, b.mux(SInput(v), t, e)), true
	}
	// f is constant (True handled via memo of False complement).
	if f == tt.True {
		return SConstTrue, true
	}
	return SConstFalse, true
}

func (b *sbuilder) memoize(f tt.Func16, l SLit) SLit {
	b.memo[f] = l
	return l
}

// factorISOP builds a structure by algebraically factoring an irredundant
// sum-of-products cover of f (or of its complement with the output
// inverted), the classic SOP-driven alternative to decomposition.
func factorISOP(f tt.Func16, compl bool) (Structure, bool) {
	target := f
	if compl {
		target = f.Not()
	}
	cover, table := tt.ISOP(target, tt.False)
	if table != target {
		return Structure{}, false
	}
	b := newBuilder()
	out := b.factor(cover)
	if compl {
		out = out.not()
	}
	s := b.finish(out)
	if s.Func() != f {
		return Structure{}, false
	}
	return s, true
}

// factor recursively divides a cover by its most frequent literal.
func (b *sbuilder) factor(cover []tt.Cube) SLit {
	if len(cover) == 0 {
		return SConstFalse
	}
	if len(cover) == 1 {
		return b.cubeAnd(cover[0])
	}
	// Count literal frequencies: literal = (var, phase).
	var count [4][2]int
	for _, c := range cover {
		for v := 0; v < 4; v++ {
			if c.Lits>>uint(v)&1 == 1 {
				count[v][c.Phase>>uint(v)&1]++
			}
		}
	}
	bestV, bestP, bestN := -1, 0, 1
	for v := 0; v < 4; v++ {
		for p := 0; p < 2; p++ {
			if count[v][p] > bestN {
				bestV, bestP, bestN = v, p, count[v][p]
			}
		}
	}
	if bestV < 0 {
		// No shared literal: balanced OR of cube ANDs.
		mid := len(cover) / 2
		return b.or(b.factor(cover[:mid]), b.factor(cover[mid:]))
	}
	var quotient, remainder []tt.Cube
	for _, c := range cover {
		if c.Lits>>uint(bestV)&1 == 1 && int(c.Phase>>uint(bestV)&1) == bestP {
			q := c
			q.Lits &^= 1 << uint(bestV)
			q.Phase &^= 1 << uint(bestV)
			quotient = append(quotient, q)
		} else {
			remainder = append(remainder, c)
		}
	}
	lit := SInput(bestV).Compl(bestP == 0)
	qf := b.and(lit, b.factor(quotient))
	if len(remainder) == 0 {
		return qf
	}
	return b.or(qf, b.factor(remainder))
}

// cubeAnd builds the conjunction of a cube's literals.
func (b *sbuilder) cubeAnd(c tt.Cube) SLit {
	out := SConstTrue
	for v := 0; v < 4; v++ {
		if c.Lits>>uint(v)&1 == 0 {
			continue
		}
		out = b.and(out, SInput(v).Compl(c.Phase>>uint(v)&1 == 0))
	}
	return out
}

package rewlib

import (
	"math/rand"
	"sync"
	"testing"

	"dacpara/internal/npn"
	"dacpara/internal/tt"
)

var sharedLib = sync.OnceValue(func() *Library {
	lib, err := Build(npn.Shared(), Params{})
	if err != nil {
		panic(err)
	}
	return lib
})

func TestEveryClassHasStructures(t *testing.T) {
	lib := sharedLib()
	m := npn.Shared()
	for i := 0; i < m.NumClasses(); i++ {
		structs := lib.Structures(i)
		if len(structs) == 0 {
			t.Fatalf("class %d (%v) has no structures", i, m.Classes()[i].Repr)
		}
		// Forests are sorted by node count.
		for k := 1; k < len(structs); k++ {
			if structs[k].NumNodes() < structs[k-1].NumNodes() {
				t.Fatalf("class %d forest not sorted by size", i)
			}
		}
	}
}

func TestStructuresComputeTheirClass(t *testing.T) {
	lib := sharedLib()
	m := npn.Shared()
	for _, cls := range m.Classes() {
		for si, s := range lib.Structures(cls.Index) {
			if got := s.Func(); got != cls.Repr {
				t.Fatalf("class %v structure %d computes %v", cls.Repr, si, got)
			}
		}
	}
}

func TestStructuresAreDeduplicated(t *testing.T) {
	lib := sharedLib()
	for i := 0; i < npn.Shared().NumClasses(); i++ {
		seen := map[string]bool{}
		for _, s := range lib.Structures(i) {
			k := s.key()
			if seen[k] {
				t.Fatalf("class %d has duplicate structure", i)
			}
			seen[k] = true
		}
	}
}

func TestStructuresAreTopological(t *testing.T) {
	lib := sharedLib()
	for i := 0; i < npn.Shared().NumClasses(); i++ {
		for _, s := range lib.Structures(i) {
			for k, g := range s.Nodes {
				for _, in := range [2]SLit{g.In0, g.In1} {
					if ai := in.AndIndex(); ai >= k {
						t.Fatalf("class %d: gate %d reads gate %d", i, k, ai)
					}
				}
			}
		}
	}
}

// TestForFuncInstantiation is the key soundness property of the Structure
// Manager: evaluating a class structure with its inputs driven through the
// inverse NPN transform must reproduce the original (non-canonical)
// function.
func TestForFuncInstantiation(t *testing.T) {
	lib := sharedLib()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 3000; i++ {
		f := tt.Func16(rng.Uint32())
		_, structs, inv := lib.ForFunc(f)
		s := &structs[rng.Intn(len(structs))]
		// Drive structure input i with variable inv.Perm[i], complemented
		// per inv.Flip; complement the output per inv.Neg.
		var in [4]tt.Func16
		for v := 0; v < 4; v++ {
			in[v] = tt.Var(int(inv.Perm[v]))
			if inv.Flip>>uint(v)&1 == 1 {
				in[v] = in[v].Not()
			}
		}
		got := s.Eval(in)
		if inv.Neg {
			got = got.Not()
		}
		if got != f {
			t.Fatalf("instantiated structure computes %v, want %v (inv=%+v)", got, f, inv)
		}
	}
}

func TestMaxPerClassLimit(t *testing.T) {
	lib, err := Build(npn.Shared(), Params{MaxPerClass: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < npn.Shared().NumClasses(); i++ {
		if n := len(lib.Structures(i)); n > 3 {
			t.Fatalf("class %d has %d structures, limit 3", i, n)
		}
	}
	if lib.MaxStructures() > 3 {
		t.Fatal("MaxStructures exceeds the limit")
	}
}

func TestPracticalClasses(t *testing.T) {
	lib := sharedLib()
	mask := lib.PracticalClasses(134)
	count := 0
	for _, b := range mask {
		if b {
			count++
		}
	}
	if count != 134 {
		t.Fatalf("selected %d classes, want 134", count)
	}
	m := npn.Shared()
	// The practical subset must include the functions arithmetic circuits
	// are made of: 2- and 3-input parities and the 3-input majority.
	for _, f := range []tt.Func16{
		tt.Var0.Xor(tt.Var1),
		tt.Var0.Xor(tt.Var1).Xor(tt.Var2),
		tt.Var0.And(tt.Var1).Or(tt.Var0.And(tt.Var2)).Or(tt.Var1.And(tt.Var2)),
		tt.Var0.And(tt.Var1),
		tt.Var0,
	} {
		if !mask[m.ClassIndex(f)] {
			t.Fatalf("practical subset misses %v", f)
		}
	}
	// Selecting everything yields the full space.
	all := lib.PracticalClasses(m.NumClasses())
	for i, b := range all {
		if !b {
			t.Fatalf("class %d missing from full selection", i)
		}
	}
}

func TestSLitHelpers(t *testing.T) {
	if v, ok := SInput(2).IsInput(); !ok || v != 2 {
		t.Fatal("SInput/IsInput round trip broken")
	}
	if val, ok := SConstTrue.IsConst(); !ok || !val {
		t.Fatal("SConstTrue not recognized")
	}
	if val, ok := SConstFalse.IsConst(); !ok || val {
		t.Fatal("SConstFalse not recognized")
	}
	if SInput(0).AndIndex() != -1 {
		t.Fatal("input literal must not have an AND index")
	}
	l := SLit(2 * 7) // first gate (inputs occupy indices 1..6)
	if l.AndIndex() != 0 {
		t.Fatalf("first gate index %d", l.AndIndex())
	}
	if l.Compl(true) == l || l.Compl(false) != l {
		t.Fatal("Compl behaves wrongly")
	}
}

func TestStructureSizesAreReasonable(t *testing.T) {
	lib := sharedLib()
	m := npn.Shared()
	worst := 0
	for i := 0; i < m.NumClasses(); i++ {
		n := lib.Structures(i)[0].NumNodes()
		if n > worst {
			worst = n
		}
	}
	// Every 4-input function is implementable well under the builder's
	// gate guard; the worst minimal structure should stay moderate.
	if worst > 20 {
		t.Fatalf("worst minimal structure has %d gates", worst)
	}
	t.Logf("worst minimal structure: %d gates", worst)
}

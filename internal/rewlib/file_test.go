package rewlib

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dacpara/internal/npn"
	"dacpara/internal/tt"
)

// sampleClasses synthesizes a handful of genuine semi-canonical classes,
// the same way the generator does.
func sampleClasses(t testing.TB, k, n int) []FileClass {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	seen := map[tt.Func64]bool{}
	var out []FileClass
	for len(out) < n {
		f := tt.Func64(rng.Uint64())
		for v := k; v < MaxInputs; v++ {
			f = f.Cofactor0(v)
		}
		repr, _ := npn.SemiCanon(f)
		if seen[repr] {
			continue
		}
		seen[repr] = true
		structs := synthesizeAll64(repr, MaxInputs, 8)
		if len(structs) == 0 {
			continue
		}
		out = append(out, FileClass{Repr: repr, Structs: structs})
	}
	return out
}

// TestFileRoundTrip: encode -> decode must reproduce the classes exactly
// (sorted by representative), and re-encoding the decoded file must be
// byte-identical — the canonical-encoding property the determinism CI
// check rests on.
func TestFileRoundTrip(t *testing.T) {
	for _, k := range []int{5, 6} {
		classes := sampleClasses(t, k, 12)
		data, err := EncodeLibrary(k, classes)
		if err != nil {
			t.Fatalf("k=%d: encode: %v", k, err)
		}
		f, err := DecodeLibrary(data)
		if err != nil {
			t.Fatalf("k=%d: decode: %v", k, err)
		}
		if f.K != k || len(f.Classes) != len(classes) {
			t.Fatalf("k=%d: decoded k=%d classes=%d", k, f.K, len(f.Classes))
		}
		if f.Hash != ContentHash(data) {
			t.Fatalf("k=%d: hash mismatch", k)
		}
		for i := 1; i < len(f.Classes); i++ {
			if f.Classes[i-1].Repr >= f.Classes[i].Repr {
				t.Fatalf("k=%d: classes not sorted", k)
			}
		}
		// Every decoded structure still implements its representative.
		var in [MaxInputs]tt.Func64
		for v := range in {
			in[v] = tt.Var64(v)
		}
		for _, c := range f.Classes {
			for si := range c.Structs {
				if got := c.Structs[si].Eval64(in); got != c.Repr {
					t.Fatalf("k=%d: class %v structure %d evaluates to %v", k, c.Repr, si, got)
				}
			}
		}
		again, err := EncodeLibrary(f.K, f.Classes)
		if err != nil {
			t.Fatalf("k=%d: re-encode: %v", k, err)
		}
		if string(again) != string(data) {
			t.Fatalf("k=%d: re-encode not byte-identical", k)
		}
	}
}

// reframe fixes up the trailing CRC after a mutation, making the frame
// valid again so decoding exercises the structural validation behind it.
func reframe(data []byte) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc32.ChecksumIEEE(out[:len(out)-4]))
	return out
}

// TestFileTypedErrors drives every framing violation onto its typed
// error.
func TestFileTypedErrors(t *testing.T) {
	classes := sampleClasses(t, 6, 4)
	data, err := EncodeLibrary(6, classes)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, img []byte, want error) {
		t.Helper()
		if _, err := DecodeLibrary(img); !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}
	check("empty", nil, ErrTruncated)
	check("magic prefix only", []byte("dacpara-rew"), ErrTruncated)
	check("other file", []byte("#!/bin/sh\necho hello, this is not a library\n"), ErrBadMagic)
	check("future version", []byte("dacpara-rewlib/v9\n more stuff here"), ErrBadVersion)
	check("header only", []byte(FileMagic), ErrTruncated)
	check("missing crc", data[:len(data)-4], ErrBadCRC)
	check("truncated tail", data[:len(data)-9], ErrBadCRC)

	flip := append([]byte(nil), data...)
	flip[len(FileMagic)+12] ^= 0x40
	check("bit flip", flip, ErrBadCRC)

	badK := append([]byte(nil), data...)
	badK[len(FileMagic)] = 9
	check("width out of range", reframe(badK), ErrMalformed)

	badRes := append([]byte(nil), data...)
	badRes[len(FileMagic)+1] = 1
	check("reserved set", reframe(badRes), ErrMalformed)

	lieClasses := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(lieClasses[len(FileMagic)+2:], 1<<30)
	check("class count beyond file", reframe(lieClasses), ErrTruncated)

	// First structure's node count inflated past the payload.
	lieNodes := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(lieNodes[fileHeaderLen+10:], 0xFFFF)
	check("node count beyond file", reframe(lieNodes), ErrTruncated)

	check("trailing garbage", reframe(append(append([]byte(nil), data[:len(data)-4]...), 0, 0, 0, 0, 0, 0)), ErrMalformed)

	// A literal referencing a later AND gate breaks topological order.
	badTopo := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(badTopo[fileHeaderLen+12:], uint16(sAnd(30000)))
	check("topology violation", reframe(badTopo), ErrMalformed)
}

// TestReadLibraryFile checks the mmap-backed loader end to end, including
// the missing-file path.
func TestReadLibraryFile(t *testing.T) {
	classes := sampleClasses(t, 5, 6)
	data, err := EncodeLibrary(5, classes)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lib.rewlib")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ReadLibraryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.K != 5 || len(f.Classes) != len(classes) || f.Hash != ContentHash(data) {
		t.Fatalf("loaded file diverges: k=%d classes=%d", f.K, len(f.Classes))
	}
	if _, err := ReadLibraryFile(filepath.Join(t.TempDir(), "absent.rewlib")); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestFilePreloadVerifies: a frame-valid file whose structure implements
// the wrong function must be rejected by Preload — the functional firewall
// between disk and rewriting.
func TestFilePreloadVerifies(t *testing.T) {
	classes := sampleClasses(t, 6, 5)
	// Corrupt one class by pointing it at a different representative: the
	// framing stays valid, the function check must catch it.
	bad := make([]FileClass, len(classes))
	copy(bad, classes)
	bad[2] = FileClass{Repr: bad[2].Repr ^ 1<<13, Structs: bad[2].Structs}
	data, err := EncodeLibrary(6, bad)
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeLibrary(data)
	if err != nil {
		t.Fatalf("frame-valid file rejected: %v", err)
	}
	b := NewBigLibrary(8)
	loaded, rejected := f.Preload(b)
	if loaded != len(classes)-1 || rejected != 1 {
		t.Fatalf("Preload loaded=%d rejected=%d, want %d/1", loaded, rejected, len(classes)-1)
	}
}

// FuzzReadRewlib is the satellite fuzz target: the loader must never
// panic on arbitrary input, must reject every corruption with a typed
// error, and on success must expose only topologically valid structures
// whose canonical re-encoding reproduces the input byte for byte.
func FuzzReadRewlib(f *testing.F) {
	classes := sampleClasses(f, 6, 5)
	valid, err := EncodeLibrary(6, classes)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(FileMagic))
	f.Add([]byte("dacpara-rewlib/v2\n"))
	f.Add(valid[:len(valid)-5])
	f.Add(reframe(append(append([]byte(nil), valid...), 1, 2, 3)))
	short, err := EncodeLibrary(5, classes[:1])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := DecodeLibrary(data)
		if err != nil {
			if lib != nil {
				t.Fatal("error with non-nil file")
			}
			for _, typed := range []error{ErrBadMagic, ErrBadVersion, ErrBadCRC, ErrTruncated, ErrMalformed} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		if lib.K < 4 || lib.K > MaxInputs {
			t.Fatalf("accepted width %d", lib.K)
		}
		for i, c := range lib.Classes {
			if i > 0 && lib.Classes[i-1].Repr >= c.Repr {
				t.Fatal("accepted unsorted classes")
			}
			for si := range c.Structs {
				if err := validStructure(&c.Structs[si]); err != nil {
					t.Fatalf("accepted invalid structure: %v", err)
				}
			}
		}
		again, err := EncodeLibrary(lib.K, lib.Classes)
		if err != nil {
			t.Fatalf("decoded file does not re-encode: %v", err)
		}
		if string(again) != string(data) {
			t.Fatal("accepted non-canonical encoding")
		}
	})
}

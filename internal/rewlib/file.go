package rewlib

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"dacpara/internal/tt"
)

// The dacpara-rewlib/v1 on-disk format holds the large-cut structure
// forests keyed by semi-canonical representative. The layout is flat,
// little-endian, 2-byte aligned, and CRC-framed:
//
//	magic     "dacpara-rewlib/v1\n"            18 bytes
//	k         u8                                cut width (4..6)
//	reserved  u8 (must be zero)                 pads the header to 20 bytes
//	classes   u32                               class count
//	per class:
//	  repr    u64                               semi-canonical table
//	  structs u16                               forest size (>= 1)
//	  per structure:
//	    nodes u16                               AND-gate count
//	    per node: In0 u16, In1 u16              SLit fanins
//	    out   u16                               SLit output
//	crc       u32                               CRC-32 (IEEE) of all prior bytes
//
// Classes are sorted by strictly increasing representative and every
// structure literal is topologically validated on decode, so a file has
// exactly one valid encoding: DecodeLibrary(EncodeLibrary(f)) == f and
// re-encoding a decoded file reproduces it byte for byte. Functional
// correctness of the structures (Eval64 == repr) is deliberately NOT part
// of decoding — BigLibrary.Preload re-verifies every structure against
// its representative, so a corrupt-but-well-framed file can never inject
// wrong logic into rewriting.

// FileMagic is the versioned magic string opening every library file.
const FileMagic = "dacpara-rewlib/v1\n"

// fileMagicPrefix identifies the format family across versions.
const fileMagicPrefix = "dacpara-rewlib/"

const fileHeaderLen = len(FileMagic) + 1 + 1 + 4 // magic + k + reserved + classes

// Typed decode failures, matched with errors.Is.
var (
	ErrBadMagic   = errors.New("rewlib: not a dacpara-rewlib file")
	ErrBadVersion = errors.New("rewlib: unsupported dacpara-rewlib version")
	ErrBadCRC     = errors.New("rewlib: checksum mismatch")
	ErrTruncated  = errors.New("rewlib: truncated file")
	ErrMalformed  = errors.New("rewlib: malformed library")
)

// FileClass is one class entry of a library file: a semi-canonical
// representative and its structure forest.
type FileClass struct {
	Repr    tt.Func64
	Structs []Structure
}

// File is a fully decoded library file.
type File struct {
	K       int
	Classes []FileClass
	// Hash is the hex sha256 of the encoded bytes — the content address
	// used by the CI determinism check and artifact caching.
	Hash string
}

// EncodeLibrary serializes a library in the canonical v1 framing. Classes
// may arrive in any order (they are sorted by representative); empty
// classes and invalid structures are rejected.
func EncodeLibrary(k int, classes []FileClass) ([]byte, error) {
	if k < 4 || k > MaxInputs {
		return nil, fmt.Errorf("%w: width %d outside 4..%d", ErrMalformed, k, MaxInputs)
	}
	sorted := append([]FileClass(nil), classes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Repr < sorted[j].Repr })
	var buf bytes.Buffer
	buf.WriteString(FileMagic)
	buf.WriteByte(byte(k))
	buf.WriteByte(0)
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(sorted)))
	buf.Write(u32[:])
	put16 := func(v int) error {
		if v < 0 || v > 0xFFFF {
			return fmt.Errorf("%w: value %d overflows u16", ErrMalformed, v)
		}
		binary.LittleEndian.PutUint16(u16[:], uint16(v))
		buf.Write(u16[:])
		return nil
	}
	for i, c := range sorted {
		if i > 0 && sorted[i-1].Repr >= c.Repr {
			return nil, fmt.Errorf("%w: duplicate class %v", ErrMalformed, c.Repr)
		}
		if len(c.Structs) == 0 {
			return nil, fmt.Errorf("%w: class %v has no structures", ErrMalformed, c.Repr)
		}
		binary.LittleEndian.PutUint64(u64[:], uint64(c.Repr))
		buf.Write(u64[:])
		if err := put16(len(c.Structs)); err != nil {
			return nil, err
		}
		for si := range c.Structs {
			s := &c.Structs[si]
			if err := validStructure(s); err != nil {
				return nil, fmt.Errorf("class %v structure %d: %w", c.Repr, si, err)
			}
			if err := put16(len(s.Nodes)); err != nil {
				return nil, err
			}
			for _, n := range s.Nodes {
				if err := put16(int(n.In0)); err != nil {
					return nil, err
				}
				if err := put16(int(n.In1)); err != nil {
					return nil, err
				}
			}
			if err := put16(int(s.Out)); err != nil {
				return nil, err
			}
		}
	}
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(u32[:])
	return buf.Bytes(), nil
}

// validStructure checks the SLit topology of a structure: fanins
// reference only the constant, the six inputs, or earlier AND gates, and
// the output is within range. The header width is harvest metadata, not
// an input bound — semi-canonical positions are chosen by one-count, so a
// five-leaf class may legitimately occupy any of the six input slots and
// the instantiation transform routes each used input back to a real leaf.
func validStructure(s *Structure) error {
	check := func(l SLit, before int) error {
		i := l.index()
		switch {
		case i <= MaxInputs:
			return nil
		case i-sAndBase < before:
			return nil
		}
		return fmt.Errorf("%w: literal %d breaks topological order", ErrMalformed, l)
	}
	for ni, n := range s.Nodes {
		if err := check(n.In0, ni); err != nil {
			return err
		}
		if err := check(n.In1, ni); err != nil {
			return err
		}
	}
	return check(s.Out, len(s.Nodes))
}

// DecodeLibrary parses and validates a v1 library file. The input must be
// a complete file image; every framing violation maps to one of the typed
// errors above.
func DecodeLibrary(data []byte) (*File, error) {
	if !bytes.HasPrefix(data, []byte(fileMagicPrefix)) {
		if len(data) < len(fileMagicPrefix) && bytes.HasPrefix([]byte(fileMagicPrefix), data) {
			return nil, ErrTruncated
		}
		return nil, ErrBadMagic
	}
	if !bytes.HasPrefix(data, []byte(FileMagic)) {
		if len(data) < len(FileMagic) && bytes.HasPrefix([]byte(FileMagic), data) {
			return nil, ErrTruncated
		}
		return nil, ErrBadVersion
	}
	if len(data) < fileHeaderLen+4 {
		return nil, ErrTruncated
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return nil, ErrBadCRC
	}
	k := int(data[len(FileMagic)])
	if k < 4 || k > MaxInputs {
		return nil, fmt.Errorf("%w: width %d outside 4..%d", ErrMalformed, k, MaxInputs)
	}
	if data[len(FileMagic)+1] != 0 {
		return nil, fmt.Errorf("%w: reserved byte set", ErrMalformed)
	}
	nClasses := int(binary.LittleEndian.Uint32(data[len(FileMagic)+2:]))
	body := payload[fileHeaderLen:]
	// The smallest class is 14 bytes (repr + count + one empty structure);
	// a count beyond that bound proves the frame is lying before any
	// allocation happens.
	if nClasses > len(body)/14 {
		return nil, ErrTruncated
	}
	pos := 0
	need := func(n int) error {
		if len(body)-pos < n {
			return ErrTruncated
		}
		return nil
	}
	f := &File{K: k, Classes: make([]FileClass, 0, nClasses)}
	for ci := 0; ci < nClasses; ci++ {
		if err := need(10); err != nil {
			return nil, err
		}
		repr := tt.Func64(binary.LittleEndian.Uint64(body[pos:]))
		nStructs := int(binary.LittleEndian.Uint16(body[pos+8:]))
		pos += 10
		if ci > 0 && f.Classes[ci-1].Repr >= repr {
			return nil, fmt.Errorf("%w: classes not strictly sorted", ErrMalformed)
		}
		if nStructs == 0 {
			return nil, fmt.Errorf("%w: class %v has no structures", ErrMalformed, repr)
		}
		if nStructs > (len(body)-pos)/4 {
			return nil, ErrTruncated
		}
		cls := FileClass{Repr: repr, Structs: make([]Structure, 0, nStructs)}
		for si := 0; si < nStructs; si++ {
			if err := need(2); err != nil {
				return nil, err
			}
			nNodes := int(binary.LittleEndian.Uint16(body[pos:]))
			pos += 2
			if err := need(4*nNodes + 2); err != nil {
				return nil, err
			}
			s := Structure{Nodes: make([]SNode, nNodes)}
			for ni := 0; ni < nNodes; ni++ {
				s.Nodes[ni] = SNode{
					In0: SLit(binary.LittleEndian.Uint16(body[pos:])),
					In1: SLit(binary.LittleEndian.Uint16(body[pos+2:])),
				}
				pos += 4
			}
			s.Out = SLit(binary.LittleEndian.Uint16(body[pos:]))
			pos += 2
			if err := validStructure(&s); err != nil {
				return nil, fmt.Errorf("class %v structure %d: %w", repr, si, err)
			}
			cls.Structs = append(cls.Structs, s)
		}
		f.Classes = append(f.Classes, cls)
	}
	if pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(body)-pos)
	}
	sum := sha256.Sum256(data)
	f.Hash = hex.EncodeToString(sum[:])
	return f, nil
}

// ContentHash returns the hex sha256 of a file image — the content
// address the generator prints and CI compares.
func ContentHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Preload installs every class of the file into the forest, re-verifying
// each structure's function against its representative (corrupt classes
// are counted, not installed).
func (f *File) Preload(b *BigLibrary) (loaded, rejected int) {
	for _, c := range f.Classes {
		if b.Preload(c.Repr, c.Structs) {
			loaded++
		} else {
			rejected++
		}
	}
	return loaded, rejected
}

// ReadLibraryFile loads and decodes a library file, memory-mapping it
// when the platform supports it.
func ReadLibraryFile(path string) (*File, error) {
	data, done, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	defer done()
	return DecodeLibrary(data)
}

package dacpara

import (
	"math/rand"
	"testing"

	"dacpara/internal/aig"
)

// TestFullPipelineOverSuite drives the complete stack on every benchmark
// of the tiny suite: generate → DACPara rewrite → LUT mapping →
// simulation equivalence. This is the end-to-end integration test of the
// repository.
func TestFullPipelineOverSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range BenchmarkNames(ScaleTiny) {
		name := name
		t.Run(name, func(t *testing.T) {
			net, err := Generate(name, ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			golden := net.Clone()
			res, err := Rewrite(net, EngineDACPara, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := net.Check(aig.CheckOptions{AllowDuplicates: true}); err != nil {
				t.Fatal(err)
			}
			if res.AreaReduction() < 0 {
				t.Fatalf("area grew by %d", -res.AreaReduction())
			}
			sg := aig.RandomSignature(golden, rand.New(rand.NewSource(9)), 4)
			sn := aig.RandomSignature(net, rand.New(rand.NewSource(9)), 4)
			if !aig.EqualSignatures(sg, sn) {
				t.Fatal("rewriting changed the function")
			}
			m, err := MapLUT(net, 6)
			if err != nil {
				t.Fatal(err)
			}
			if m.Area <= 0 || m.Depth <= 0 {
				t.Fatalf("degenerate mapping %+v", m)
			}
			t.Logf("%s: %d -> %d ands, %d LUT6 depth %d",
				name, res.InitialAnds, res.FinalAnds, m.Area, m.Depth)
		})
	}
}

// Command exptables regenerates the paper's experiment tables on the
// current machine: Table 1 (benchmark detail), Table 2 (ABC vs ICCAD'18
// vs DACPara), Table 3 (MtM set with the GPU-method models and the P1/P2
// configurations), the Fig. 2 conflict/wasted-work experiment, and a
// thread-scaling sweep.
//
// Usage:
//
//	exptables -scale small -threads 8 -runs 3 -table all
//
// Runtime columns depend on the machine (the paper used a 64-core AMD
// 3990X; see EXPERIMENTS.md for the mapping); quality columns — area
// reduction, delay, conflict behaviour — are machine-independent.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dacpara"
	"dacpara/internal/aig"
	"dacpara/internal/bench"
	"dacpara/internal/cec"
	"dacpara/internal/core"
	"dacpara/internal/lockpar"
	"dacpara/internal/lutmap"
	"dacpara/internal/npn"
	"dacpara/internal/report"
	"dacpara/internal/rewlib"
	"dacpara/internal/rewrite"
	"dacpara/internal/staticpar"
)

var (
	scaleFlag  = flag.String("scale", "small", "benchmark scale: tiny, small, full")
	threads    = flag.Int("threads", runtime.NumCPU(), "parallel engine threads (paper: 40)")
	runs       = flag.Int("runs", 1, "averaging runs per data point (paper: 5)")
	table      = flag.String("table", "all", "which table: 1, 2, 3, fig2, scaling, ablation, flows, all")
	verify     = flag.Bool("verify", true, "equivalence-check every rewritten circuit")
	fullVerify = flag.Bool("full-verify", false, "SAT-backed verification (slow); default is simulation")
)

func main() {
	flag.Parse()
	sc := parseScale(*scaleFlag)
	lib, err := rewlib.Build(npn.Shared(), rewlib.Params{})
	fatal(err)

	fmt.Printf("# DACPara experiment tables — scale=%s threads=%d runs=%d cpus=%d\n\n",
		sc, *threads, *runs, runtime.NumCPU())

	switch *table {
	case "1":
		table1(sc)
	case "2":
		table2(sc, lib)
	case "3":
		table3(sc, lib)
	case "fig2":
		fig2(sc, lib)
	case "scaling":
		scaling(sc, lib)
	case "ablation":
		ablation(sc, lib)
	case "flows":
		flows(sc)
	case "all":
		table1(sc)
		table2(sc, lib)
		table3(sc, lib)
		fig2(sc, lib)
		scaling(sc, lib)
		ablation(sc, lib)
		flows(sc)
	default:
		fmt.Fprintln(os.Stderr, "exptables: unknown -table", *table)
		os.Exit(2)
	}
}

// table1 prints the benchmark detail (paper Table 1).
func table1(sc bench.Scale) {
	tbl := report.New("Table 1: Benchmark Detail", "Benchmark", "PIs", "POs", "Area", "Delay", "Sources")
	for _, c := range bench.Suite(sc) {
		a := c.Instantiate(sc)
		st := a.Stats()
		tbl.Row(c.Name, st.PIs, st.POs, st.Ands, st.Delay, c.Source)
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

type engineRun struct {
	name string
	run  func(*aig.AIG) (rewrite.Result, error)
}

// measure averages an engine over runs, verifying each result.
func measure(c bench.Circuit, sc bench.Scale, e engineRun) rewrite.Result {
	var acc rewrite.Result
	var secs float64
	for r := 0; r < *runs; r++ {
		a := c.Instantiate(sc)
		var golden *aig.AIG
		if *verify {
			golden = a.Clone()
		}
		res, err := e.run(a)
		fatal(err)
		if *verify {
			opts := cec.Options{SimOnly: !*fullVerify, SimRounds: 32}
			chk, err := cec.Check(golden, a, opts)
			fatal(err)
			if !chk.Equivalent {
				fmt.Fprintf(os.Stderr, "exptables: %s on %s FAILED equivalence\n", e.name, c.Name)
				os.Exit(1)
			}
		}
		secs += res.Duration.Seconds()
		acc = res
	}
	acc.Duration = time.Duration(secs / float64(*runs) * 1e9)
	return acc
}

// table2 compares ABC (serial), ICCAD'18 and DACPara (paper Table 2).
func table2(sc bench.Scale, lib *rewlib.Library) {
	tbl := report.New("Table 2: ABC (1 thread) vs ICCAD'18 vs DACPara",
		"Benchmark", "ABC T(s)", "ABC ARed", "ABC D",
		"ICCAD18 T(s)", "ICCAD18 ARed", "ICCAD18 D",
		"DACPara T(s)", "DACPara ARed", "DACPara D")
	engines := []engineRun{
		{"abc", func(a *aig.AIG) (rewrite.Result, error) { return rewrite.Serial(a, lib, rewrite.Config{}) }},
		{"iccad18", func(a *aig.AIG) (rewrite.Result, error) {
			return lockpar.Rewrite(a, lib, rewrite.Config{Workers: *threads})
		}},
		{"dacpara", func(a *aig.AIG) (rewrite.Result, error) {
			return core.Rewrite(a, lib, rewrite.Config{Workers: *threads})
		}},
	}
	type ratios struct{ t, ared, d []float64 }
	norm := make([]ratios, len(engines))
	for _, c := range bench.Suite(sc) {
		row := []any{c.Name}
		var results []rewrite.Result
		for _, e := range engines {
			res := measure(c, sc, e)
			results = append(results, res)
			row = append(row, res.Duration.Seconds(), res.AreaReduction(), res.FinalDelay)
		}
		base := results[len(results)-1] // normalize against DACPara, as the paper does
		for i, res := range results {
			norm[i].t = append(norm[i].t, report.Ratio(res.Duration.Seconds(), base.Duration.Seconds()))
			norm[i].ared = append(norm[i].ared, report.Ratio(float64(res.AreaReduction()), float64(base.AreaReduction())))
			norm[i].d = append(norm[i].d, report.Ratio(float64(res.FinalDelay), float64(base.FinalDelay)))
		}
		tbl.Row(row...)
	}
	meanRow := []any{"Normalized Mean"}
	for i := range engines {
		meanRow = append(meanRow, report.GeoMean(norm[i].t), report.GeoMean(norm[i].ared), report.GeoMean(norm[i].d))
	}
	tbl.Row(meanRow...)
	tbl.Render(os.Stdout)
	fmt.Println()
}

// table3 compares ICCAD'18, the GPU-method models and DACPara-P1/P2 on
// the MtM set (paper Table 3).
func table3(sc bench.Scale, lib *rewlib.Library) {
	tbl := report.New("Table 3: MtM set — ICCAD'18, DAC'22*, TCAD'23*, DACPara-P1, DACPara-P2 (*CPU models)",
		"Benchmark",
		"ICCAD18 T(s)", "ICCAD18 ARed", "ICCAD18 D",
		"DAC22 T(s)", "DAC22 ARed", "DAC22 D",
		"TCAD23 T(s)", "TCAD23 ARed", "TCAD23 D",
		"P1 T(s)", "P1 ARed", "P1 D",
		"P2 T(s)", "P2 ARed", "P2 D")
	// The GPU papers run drw-style budgets twice; P1 mirrors that, P2 is
	// the ICCAD'18 setup (see rewrite.P1/P2).
	drwCfg := rewrite.Config{MaxCuts: 8, MaxStructs: 5, NumClasses: 222, Passes: 2, Workers: *threads}
	engines := []engineRun{
		{"iccad18", func(a *aig.AIG) (rewrite.Result, error) {
			return lockpar.Rewrite(a, lib, rewrite.Config{Workers: *threads})
		}},
		{"dac22", func(a *aig.AIG) (rewrite.Result, error) {
			return staticpar.Rewrite(a, lib, drwCfg, staticpar.DAC22)
		}},
		{"tcad23", func(a *aig.AIG) (rewrite.Result, error) {
			return staticpar.Rewrite(a, lib, drwCfg, staticpar.TCAD23)
		}},
		{"p1", func(a *aig.AIG) (rewrite.Result, error) {
			cfg := rewrite.P1()
			cfg.Workers = *threads
			return core.Rewrite(a, lib, cfg)
		}},
		{"p2", func(a *aig.AIG) (rewrite.Result, error) {
			cfg := rewrite.P2()
			cfg.Workers = *threads
			return core.Rewrite(a, lib, cfg)
		}},
	}
	type ratios struct{ t, ared, d []float64 }
	norm := make([]ratios, len(engines))
	for _, c := range bench.MtMSet(sc) {
		row := []any{c.Name}
		var results []rewrite.Result
		for _, e := range engines {
			res := measure(c, sc, e)
			results = append(results, res)
			row = append(row, res.Duration.Seconds(), res.AreaReduction(), res.FinalDelay)
		}
		base := results[len(results)-1] // normalize against P2
		for i, res := range results {
			norm[i].t = append(norm[i].t, report.Ratio(res.Duration.Seconds(), base.Duration.Seconds()))
			norm[i].ared = append(norm[i].ared, report.Ratio(float64(res.AreaReduction()), float64(base.AreaReduction())))
			norm[i].d = append(norm[i].d, report.Ratio(float64(res.FinalDelay), float64(base.FinalDelay)))
		}
		tbl.Row(row...)
	}
	meanRow := []any{"Norm Mean"}
	for i := range engines {
		meanRow = append(meanRow, report.GeoMean(norm[i].t), report.GeoMean(norm[i].ared), report.GeoMean(norm[i].d))
	}
	tbl.Row(meanRow...)
	tbl.Render(os.Stdout)
	fmt.Println()
}

// fig2 measures the operator-conflict behaviour (paper Fig. 2): the fused
// ICCAD'18 operator wastes its whole computation on a conflict; DACPara's
// split operators conflict rarely and waste almost nothing.
func fig2(sc bench.Scale, lib *rewlib.Library) {
	tbl := report.New("Fig. 2: operator conflicts and wasted speculative work",
		"Benchmark", "Engine", "Activities", "Aborts", "Abort%", "Wasted work", "Wasted%")
	for _, c := range bench.Suite(sc) {
		for _, e := range []engineRun{
			{"iccad18", func(a *aig.AIG) (rewrite.Result, error) {
				return lockpar.Rewrite(a, lib, rewrite.Config{Workers: *threads})
			}},
			{"dacpara", func(a *aig.AIG) (rewrite.Result, error) {
				return core.Rewrite(a, lib, rewrite.Config{Workers: *threads})
			}},
		} {
			a := c.Instantiate(sc)
			res, err := e.run(a)
			fatal(err)
			total := res.Commits + res.Aborts
			tbl.Row(c.Name, e.name, total, res.Aborts,
				100*report.Ratio(float64(res.Aborts), float64(total)),
				res.WastedWork.Round(time.Microsecond).String(),
				100*res.WastedFraction())
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// scaling sweeps worker counts (the speedup experiment; meaningful with
// many cores).
func scaling(sc bench.Scale, lib *rewlib.Library) {
	tbl := report.New("Thread scaling (speedup columns need a many-core machine)",
		"Benchmark", "Engine", "Threads", "T(s)", "ARed", "Aborts")
	ths := []int{1, 2, 4, 8}
	if runtime.NumCPU() > 8 {
		ths = append(ths, runtime.NumCPU())
	}
	for _, name := range []string{"mult", "log2"} {
		c, ok := findCircuit(sc, name)
		if !ok {
			continue
		}
		for _, e := range []string{"iccad18", "dacpara"} {
			for _, th := range ths {
				a := c.Instantiate(sc)
				var res rewrite.Result
				var err error
				if e == "iccad18" {
					res, err = lockpar.Rewrite(a, lib, rewrite.Config{Workers: th})
				} else {
					res, err = core.Rewrite(a, lib, rewrite.Config{Workers: th})
				}
				fatal(err)
				tbl.Row(c.Name, e, th, res.Duration.Seconds(), res.AreaReduction(), res.Aborts)
			}
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// ablation exercises the design-choice experiments DESIGN.md calls out:
// level partitioning (flat worklist) and decentralized vs global strash.
func ablation(sc bench.Scale, lib *rewlib.Library) {
	tbl := report.New("Ablations: level partitioning and structural hashing",
		"Benchmark", "Variant", "T(s)", "ARed", "Stale", "Aborts")
	for _, name := range []string{"mult", "sin"} {
		c, ok := findCircuit(sc, name)
		if !ok {
			continue
		}
		variants := []struct {
			name string
			run  func() (rewrite.Result, error)
		}{
			{"dacpara(level lists)", func() (rewrite.Result, error) {
				return core.Rewrite(c.Instantiate(sc), lib, rewrite.Config{Workers: *threads})
			}},
			{"dacpara(flat worklist)", func() (rewrite.Result, error) {
				return core.RewriteFlat(c.Instantiate(sc), lib, rewrite.Config{Workers: *threads})
			}},
			{"serial(decentralized strash)", func() (rewrite.Result, error) {
				return rewrite.Serial(c.Instantiate(sc), lib, rewrite.Config{})
			}},
			{"serial(global strash)", func() (rewrite.Result, error) {
				a := c.Instantiate(sc).CloneWith(aig.Options{GlobalStrash: true})
				return rewrite.Serial(a, lib, rewrite.Config{})
			}},
		}
		for _, v := range variants {
			res, err := v.run()
			fatal(err)
			tbl.Row(c.Name, v.name, res.Duration.Seconds(), res.AreaReduction(), res.Stale, res.Aborts)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// flows reports the extension pipeline: DACPara alone vs the full
// resyn2rs script, with post-mapping LUT area/depth showing the
// downstream value of AIG optimization.
func flows(sc bench.Scale) {
	tbl := report.New("Extension: optimization flows and 6-LUT mapping",
		"Benchmark", "Stage", "Area", "Delay", "LUT6", "LUT depth", "T(s)")
	for _, name := range []string{"sin", "mult", "log2"} {
		c, ok := findCircuit(sc, name)
		if !ok {
			continue
		}
		base := c.Instantiate(sc)
		row := func(stage string, net *aig.AIG, secs float64) {
			m, err := lutmap.Map(net, lutmap.Config{K: 6})
			fatal(err)
			st := net.Stats()
			tbl.Row(c.Name, stage, st.Ands, st.Delay, m.Area, m.Depth, secs)
		}
		row("initial", base, 0)
		opt := base.Clone()
		res, err := core.Rewrite(opt, mustLib(), rewrite.Config{Workers: *threads})
		fatal(err)
		row("dacpara", opt, res.Duration.Seconds())
		full := base.Clone()
		t0 := time.Now()
		_, full2, err := dacparaFlow(full)
		fatal(err)
		row("resyn2rs", full2, time.Since(t0).Seconds())
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

var libOnce *rewlib.Library

func mustLib() *rewlib.Library {
	if libOnce == nil {
		var err error
		libOnce, err = rewlib.Build(npn.Shared(), rewlib.Params{})
		fatal(err)
	}
	return libOnce
}

// dacparaFlow runs the resyn2rs script via the facade.
func dacparaFlow(net *aig.AIG) ([]dacpara.Result, *aig.AIG, error) {
	return dacpara.Flow(net, dacpara.Resyn2rs, dacpara.Config{Workers: *threads})
}

func findCircuit(sc bench.Scale, base string) (bench.Circuit, bool) {
	for _, c := range bench.Suite(sc) {
		if c.Name == base || hasPrefixBase(c.Name, base) {
			return c, true
		}
	}
	return bench.Circuit{}, false
}

func hasPrefixBase(name, base string) bool {
	return len(name) > len(base) && name[:len(base)] == base && name[len(base)] == '_'
}

func parseScale(s string) bench.Scale {
	switch s {
	case "tiny":
		return bench.ScaleTiny
	case "full":
		return bench.ScaleFull
	default:
		return bench.ScaleSmall
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "exptables:", err)
		os.Exit(1)
	}
}

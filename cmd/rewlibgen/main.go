// Command rewlibgen builds dacpara-rewlib/v1 structure-library files for
// large-cut rewriting: it harvests the 5/6-input cut functions that
// actually occur on the generated benchmark suite, classifies them
// semi-canonically, synthesizes a deterministic structure forest per
// class, and writes the CRC-framed library file that `dacpara -rewlib`
// (or $DACPARA_REWLIB) preloads.
//
// The whole pipeline is deterministic — circuits in suite order, nodes in
// ID order, classes sorted by representative, synthesis seedless — so two
// runs over the same suite produce byte-identical files; the printed
// sha256 is the content address CI compares.
//
// Usage:
//
//	rewlibgen -k 5 -out rewlib_k5.bin
//	rewlibgen -k 6 -scale tiny -circuits sin,sqrt -per-class 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"dacpara"
	"dacpara/internal/cut"
	"dacpara/internal/npn"
	"dacpara/internal/rewlib"
	"dacpara/internal/tt"
)

func main() {
	var (
		k        = flag.Int("k", 6, "cut width to harvest, 5 or 6")
		scale    = flag.String("scale", "tiny", "benchmark scale to harvest: tiny, small, full")
		circuits = flag.String("circuits", "", "comma-separated circuit names (default: whole suite)")
		perClass = flag.Int("per-class", rewlib.DefaultBigPerClass, "structures kept per class")
		maxCls   = flag.Int("max-classes", 0, "cap on emitted classes, most frequent first (0 = all harvested)")
		out      = flag.String("out", "", "output file (default rewlib_k<k>.bin)")
		quiet    = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()
	if *k < 5 || *k > dacpara.MaxCutWidth {
		fatal(fmt.Errorf("rewlibgen: -k %d out of range 5..%d", *k, dacpara.MaxCutWidth))
	}

	sc := parseScale(*scale)
	names := dacpara.BenchmarkNames(sc)
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}

	// Harvest: count every semi-canonical class of a wide (5+ leaf) cut
	// across the suite. All iteration orders are deterministic.
	freq := map[tt.Func64]int{}
	cache := npn.NewSemiCache()
	for _, name := range names {
		net, err := dacpara.Generate(name, sc)
		fatal(err)
		cm := cut.NewManager(net, cut.Params{K: *k})
		cm.Ensure(0, nil)
		for _, pi := range net.PIs() {
			cm.Ensure(pi, nil)
		}
		wide := 0
		net.ForEachAnd(func(id int32) {
			cuts, ok := cm.Ensure(id, nil)
			if !ok {
				return
			}
			for ci := range cuts {
				if cuts[ci].Size < 5 {
					continue
				}
				repr, _ := cache.Canon(cuts[ci].TT)
				freq[repr]++
				wide++
			}
		})
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%-14s %7d wide cuts, %6d classes so far\n", name, wide, len(freq))
		}
	}

	reprs := make([]tt.Func64, 0, len(freq))
	for r := range freq {
		reprs = append(reprs, r)
	}
	sort.Slice(reprs, func(i, j int) bool { return reprs[i] < reprs[j] })
	if *maxCls > 0 && len(reprs) > *maxCls {
		// Keep the most frequent classes; ties break on the representative
		// so the cap stays deterministic.
		sort.Slice(reprs, func(i, j int) bool {
			if freq[reprs[i]] != freq[reprs[j]] {
				return freq[reprs[i]] > freq[reprs[j]]
			}
			return reprs[i] < reprs[j]
		})
		reprs = reprs[:*maxCls]
		sort.Slice(reprs, func(i, j int) bool { return reprs[i] < reprs[j] })
	}

	// Synthesize every class's forest. Synthesis is per-class
	// deterministic, so the parallel fan-out cannot affect the output.
	big := rewlib.NewBigLibrary(*perClass)
	classes := make([]rewlib.FileClass, len(reprs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, r := range reprs {
		i, r := i, r
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			classes[i] = rewlib.FileClass{Repr: r, Structs: big.ForRepr(r)}
		}()
	}
	wg.Wait()
	kept := classes[:0]
	for _, c := range classes {
		if len(c.Structs) > 0 {
			kept = append(kept, c)
		}
	}

	data, err := rewlib.EncodeLibrary(*k, kept)
	fatal(err)
	path := *out
	if path == "" {
		path = fmt.Sprintf("rewlib_k%d.bin", *k)
	}
	fatal(os.WriteFile(path, data, 0o644))
	fmt.Printf("%s: k=%d classes=%d bytes=%d sha256=%s\n",
		path, *k, len(kept), len(data), rewlib.ContentHash(data))
}

func parseScale(s string) dacpara.Scale {
	switch s {
	case "tiny":
		return dacpara.ScaleTiny
	case "small":
		return dacpara.ScaleSmall
	case "full":
		return dacpara.ScaleFull
	}
	fatal(fmt.Errorf("rewlibgen: unknown scale %q", s))
	panic("unreachable")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command cec checks combinational equivalence of two AIGER circuits
// using random simulation screening and a CDCL SAT proof per output.
//
// Usage:
//
//	cec a.aig b.aig
//	cec -sim-only big_a.aig big_b.aig
package main

import (
	"flag"
	"fmt"
	"os"

	"dacpara/internal/aig"
	"dacpara/internal/cec"
)

func main() {
	simOnly := flag.Bool("sim-only", false, "simulation screening only (no SAT proof)")
	rounds := flag.Int("rounds", 16, "simulation rounds (64 patterns each)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: cec [-sim-only] a.aig b.aig")
		os.Exit(2)
	}
	a, err := aig.ReadFile(flag.Arg(0))
	fatal(err)
	b, err := aig.ReadFile(flag.Arg(1))
	fatal(err)
	res, err := cec.Check(a, b, cec.Options{SimOnly: *simOnly, SimRounds: *rounds})
	fatal(err)
	switch {
	case !res.Equivalent:
		fmt.Printf("NOT EQUIVALENT (output %d differs)\n", res.FailingOutput)
		os.Exit(1)
	case res.Proved:
		fmt.Printf("equivalent (SAT-proved, %d conflicts)\n", res.SATConflicts)
	default:
		fmt.Println("equivalent (simulation-only confidence)")
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cec:", err)
		os.Exit(1)
	}
}

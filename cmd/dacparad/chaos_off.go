//go:build !chaos

package main

import (
	"errors"
	"net/http"
)

// The default build carries no fault-injection code: -chaos-plan is
// always a recognized flag (so scripts can pass it unconditionally) but
// setting it on this binary is a startup error, never a silent no-op —
// a chaos run that quietly injects nothing would report a robustness
// pass it did not earn.

var errChaosNotBuilt = errors.New("built without chaos support; rebuild with -tags chaos to use -chaos-plan")

// chaosWorkerClient returns the HTTP client for the worker role. With
// no plan it defers to the worker's default client.
func chaosWorkerClient(spec, workerID string) (*http.Client, error) {
	if spec == "" {
		return nil, nil
	}
	return nil, errChaosNotBuilt
}

// chaosWrapHandler wraps the daemon handler with coordinator-side
// faults. With no plan the handler passes through untouched.
func chaosWrapHandler(spec string, h http.Handler) (http.Handler, error) {
	if spec == "" {
		return h, nil
	}
	return nil, errChaosNotBuilt
}

// Command dacparad is the DACPara optimization daemon: a long-running
// HTTP service that accepts AIGER/BENCH circuit uploads, schedules
// rewriting jobs over a bounded queue with admission control, serves
// repeated submissions from a structural-hash-keyed result cache, and
// drains gracefully on SIGTERM. With -data-dir it is crash-safe: every
// job is journaled to a write-ahead log, multi-step flows checkpoint at
// step boundaries, and a restart replays the journal and resumes
// interrupted work.
//
// Usage:
//
//	dacparad -addr :8080 -max-jobs 8 -queue 64
//	dacparad -addr :8080 -data-dir /var/lib/dacparad -max-rss 4096 -default-deadline 10m
//
//	curl -X POST --data-binary @circuit.aig 'localhost:8080/jobs?engine=dacpara&workers=4'
//	curl localhost:8080/jobs/j00000001
//	curl localhost:8080/jobs/j00000001/metrics
//	curl -o optimized.aig localhost:8080/jobs/j00000001/result
//	curl -X POST localhost:8080/jobs/j00000001/cancel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dacpara/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		queue     = flag.Int("queue", 64, "job queue limit (submissions beyond it get 429)")
		maxJobs   = flag.Int("max-jobs", 8, "engine jobs running concurrently")
		jobWork   = flag.Int("job-workers", 0, "per-job worker budget (0 = NumCPU/max-jobs, min 1)")
		cacheN    = flag.Int("cache-entries", 256, "result cache entry bound")
		cacheMB   = flag.Int64("cache-mb", 256, "result cache size bound in MiB")
		uploadMB  = flag.Int64("max-upload-mb", 256, "submission body size bound in MiB")
		drainGrac = flag.Duration("drain-grace", 30*time.Second, "on SIGTERM: how long running jobs may finish before being cancelled")
		dataDir   = flag.String("data-dir", "", "durable data directory (job journal + checkpoints); empty = in-memory only")
		maxRSS    = flag.Int64("max-rss", 0, "heap high-water mark in MiB: above 3/4 of it new submissions get 503, above it the largest running job is cancelled (0 = no memory watchdog)")
		deadline  = flag.Duration("default-deadline", 0, "default per-job wall-clock deadline for submissions that set none (0 = unbounded)")
	)
	flag.Parse()

	svc, rec, err := serve.Open(serve.Options{
		QueueLimit:      *queue,
		MaxConcurrent:   *maxJobs,
		WorkersPerJob:   *jobWork,
		CacheEntries:    *cacheN,
		CacheBytes:      *cacheMB << 20,
		DataDir:         *dataDir,
		DefaultDeadline: *deadline,
		MemSoftLimit:    (*maxRSS << 20) * 3 / 4,
		MemHardLimit:    *maxRSS << 20,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dacparad: opening data dir:", err)
		os.Exit(1)
	}
	if rec != nil && (rec.Replayed > 0 || rec.TruncatedBytes > 0) {
		fmt.Printf("dacparad: recovered %s: %d journal records (%d torn bytes dropped), %d terminal jobs restored, %d requeued (%d from checkpoints), %d lost\n",
			*dataDir, rec.Replayed, rec.TruncatedBytes, len(rec.Restored), len(rec.Requeued), len(rec.Resumed), len(rec.Lost))
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: svc.HandlerMaxUpload(*uploadMB << 20),
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	opts := svc.Options()
	fmt.Printf("dacparad: listening on %s (max-jobs=%d workers-per-job=%d queue=%d)\n",
		*addr, opts.MaxConcurrent, opts.WorkersPerJob, opts.QueueLimit)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dacparad:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, stop admitting jobs,
	// let running jobs finish within the grace period, cancel stragglers
	// at their next cancellation point, then exit.
	fmt.Println("dacparad: draining (no new jobs; running jobs get", *drainGrac, "to finish)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrac+10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dacparad: shutdown:", err)
	}
	svc.Drain(*drainGrac)
	fmt.Println("dacparad: drained, bye")
}

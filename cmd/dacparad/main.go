// Command dacparad is the DACPara optimization daemon: a long-running
// HTTP service that accepts AIGER/BENCH circuit uploads, schedules
// rewriting jobs over a bounded queue with admission control, serves
// repeated submissions from a structural-hash-keyed result cache, and
// drains gracefully on SIGTERM. With -data-dir it is crash-safe: every
// job is journaled to a write-ahead log, multi-step flows checkpoint at
// step boundaries, and a restart replays the journal and resumes
// interrupted work.
//
// With -role it scales out to a fault-tolerant cluster: a coordinator
// owns admission, the journal and the result cache, and hands jobs to
// workers under time-bounded leases; workers pull work over HTTP,
// heartbeat while running, upload per-step flow checkpoints, and stream
// results back. A worker that stops heartbeating loses its lease and
// its job resumes from the last uploaded checkpoint on another worker;
// with zero live workers the coordinator runs jobs locally.
//
// A submission with partition=N (N >= 2) runs partitioned: the circuit
// is split into N shards along low-coupling frontiers, each shard is
// rewritten independently — fanned out across the worker fleet when one
// is attached, on local goroutines otherwise — CEC-verified, and
// stitched back. A lost worker costs only its shard's attempt, and on a
// durable coordinator finished shards survive a crash and are not
// re-run.
//
// Usage:
//
//	dacparad -addr :8080 -max-jobs 8 -queue 64
//	dacparad -addr :8080 -data-dir /var/lib/dacparad -max-rss 4096 -default-deadline 10m
//	dacparad -role coordinator -addr :8080 -data-dir /var/lib/dacparad -lease 15s
//	dacparad -role worker -join http://coord:8080 -worker-id w1
//
//	curl -X POST --data-binary @circuit.aig 'localhost:8080/jobs?engine=dacpara&workers=4'
//	curl -X POST --data-binary @circuit.aig 'localhost:8080/jobs?engine=dacpara&partition=4&verify=1'
//	curl localhost:8080/jobs/j00000001
//	curl localhost:8080/jobs/j00000001/metrics
//	curl -o optimized.aig localhost:8080/jobs/j00000001/result
//	curl -X POST localhost:8080/jobs/j00000001/cancel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dacpara/internal/cluster"
	"dacpara/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (coordinator/standalone roles)")
		queue     = flag.Int("queue", 64, "job queue limit (submissions beyond it get 429)")
		maxJobs   = flag.Int("max-jobs", 8, "engine jobs running concurrently")
		jobWork   = flag.Int("job-workers", 0, "per-job worker budget (0 = NumCPU/max-jobs, min 1)")
		cacheN    = flag.Int("cache-entries", 256, "result cache entry bound")
		cacheMB   = flag.Int64("cache-mb", 256, "result cache size bound in MiB")
		uploadMB  = flag.Int64("max-upload-mb", 256, "submission body size bound in MiB")
		drainGrac = flag.Duration("drain-grace", 30*time.Second, "on SIGTERM: how long running jobs may finish before being cancelled")
		dataDir   = flag.String("data-dir", "", "durable data directory (job journal + checkpoints); empty = in-memory only")
		maxRSS    = flag.Int64("max-rss", 0, "heap high-water mark in MiB: above 3/4 of it new submissions get 503, above it the largest running job is cancelled (0 = no memory watchdog)")
		deadline  = flag.Duration("default-deadline", 0, "default per-job wall-clock deadline for submissions that set none (0 = unbounded)")

		role      = flag.String("role", "standalone", "process role: standalone, coordinator (accept workers), or worker (join a coordinator)")
		join      = flag.String("join", "", "coordinator base URL to join (worker role), e.g. http://coord:8080")
		workerID  = flag.String("worker-id", "", "stable worker identity (worker role; default: the hostname + pid)")
		lease     = flag.Duration("lease", 15*time.Second, "coordinator: how long a worker may go silent before its lease expires and the job fails over")
		heartbeat = flag.Duration("heartbeat", 0, "heartbeat cadence (coordinator advertises it; worker override). 0 = lease/3")
		attempts  = flag.Int("attempts", 3, "coordinator: lease budget per job before it is terminally failed")

		chaosSpec = flag.String("chaos-plan", "", "deterministic fault-injection plan, JSON literal or @file (needs a binary built with -tags chaos); same seed, same faults")
	)
	flag.Parse()

	switch *role {
	case "worker":
		os.Exit(runWorker(*join, *workerID, *heartbeat, *chaosSpec))
	case "standalone", "coordinator":
	default:
		fmt.Fprintf(os.Stderr, "dacparad: unknown -role %q (want standalone, coordinator or worker)\n", *role)
		os.Exit(2)
	}

	opts := serve.Options{
		QueueLimit:      *queue,
		MaxConcurrent:   *maxJobs,
		WorkersPerJob:   *jobWork,
		CacheEntries:    *cacheN,
		CacheBytes:      *cacheMB << 20,
		DataDir:         *dataDir,
		DefaultDeadline: *deadline,
		MemSoftLimit:    (*maxRSS << 20) * 3 / 4,
		MemHardLimit:    *maxRSS << 20,
	}
	if *role == "coordinator" {
		opts.Cluster = &cluster.Config{
			Lease:       *lease,
			Heartbeat:   *heartbeat,
			MaxAttempts: *attempts,
		}
	}

	// The listener comes up before journal replay finishes, behind a
	// booting handler: /healthz answers 200 (the process is alive) and
	// everything else 503 "booting", so supervisors never kill a replaying
	// process and load balancers never route to one. Once serve.Open
	// returns, the real handler is swapped in atomically.
	var handler atomic.Value // of http.Handler
	handler.Store(bootingHandler())
	srv := &http.Server{
		Addr: *addr,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(http.Handler).ServeHTTP(w, r)
		}),
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	svc, rec, err := serve.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dacparad: opening data dir:", err)
		os.Exit(1)
	}
	if rec != nil && (rec.Replayed > 0 || rec.TruncatedBytes > 0) {
		fmt.Printf("dacparad: recovered %s: %d journal records (%d torn bytes dropped), %d terminal jobs restored, %d requeued (%d from checkpoints), %d lost\n",
			*dataDir, rec.Replayed, rec.TruncatedBytes, len(rec.Restored), len(rec.Requeued), len(rec.Resumed), len(rec.Lost))
	}
	live, err := chaosWrapHandler(*chaosSpec, svc.HandlerMaxUpload(*uploadMB<<20))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dacparad:", err)
		os.Exit(2)
	}
	handler.Store(live)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	sopts := svc.Options()
	fmt.Printf("dacparad: %s listening on %s (max-jobs=%d workers-per-job=%d queue=%d)\n",
		*role, *addr, sopts.MaxConcurrent, sopts.WorkersPerJob, sopts.QueueLimit)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dacparad:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: flip /readyz to not-ready first (load balancers
	// stop routing), then stop accepting connections, stop admitting
	// jobs, let running jobs finish within the grace period, cancel
	// stragglers at their next cancellation point, then exit.
	fmt.Println("dacparad: draining (no new jobs; running jobs get", *drainGrac, "to finish)")
	handler.Store(drainingHandler(live))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrac+10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dacparad: shutdown:", err)
	}
	svc.Drain(*drainGrac)
	fmt.Println("dacparad: drained, bye")
}

// bootingHandler serves the boot window between listener-up and journal
// replay done: alive, not ready.
func bootingHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"booting"}`)
	})
	return mux
}

// drainingHandler wraps the live handler but pins /readyz to 503, so
// the not-ready signal is visible the instant shutdown begins rather
// than when the service's drain state catches up.
func drainingHandler(live http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "10")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
	})
	mux.Handle("/", live)
	return mux
}

// runWorker is the worker role: join the coordinator and pull work
// until SIGTERM. The worker keeps no state worth draining — on signal
// the in-flight job is abandoned and its lease fails it over.
func runWorker(join, id string, heartbeat time.Duration, chaosSpec string) int {
	if join == "" {
		fmt.Fprintln(os.Stderr, "dacparad: -role worker requires -join <coordinator URL>")
		return 2
	}
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	client, err := chaosWorkerClient(chaosSpec, id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dacparad:", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	w := cluster.NewWorker(cluster.WorkerOptions{
		Coordinator: join,
		ID:          id,
		Heartbeat:   heartbeat,
		Client:      client,
	})
	fmt.Printf("dacparad: worker %s joining %s\n", id, join)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "dacparad: worker:", err)
		return 1
	}
	fmt.Println("dacparad: worker stopped")
	return 0
}

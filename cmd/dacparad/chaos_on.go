//go:build chaos

package main

import (
	"net/http"

	"dacpara/internal/chaos"
)

// Built with -tags chaos: -chaos-plan accepts a JSON plan literal or
// @file and injects its faults deterministically. The same plan string
// works on both roles — workers fault their outbound RPCs through a
// chaos.Transport, the coordinator faults its /cluster/ handling
// through a chaos.Middleware — and because every fault is a pure
// function of (seed, stream, call index), a failing run reproduces
// from the plan alone.

// chaosWorkerClient returns an HTTP client whose transport applies the
// plan's faults to this worker's RPC streams.
func chaosWorkerClient(spec, workerID string) (*http.Client, error) {
	if spec == "" {
		return nil, nil
	}
	plan, err := chaos.ParsePlan(spec)
	if err != nil {
		return nil, err
	}
	return &http.Client{Transport: chaos.NewTransport(plan, nil, workerID)}, nil
}

// chaosWrapHandler wraps the daemon handler with the plan's
// coordinator-side faults (only /cluster/ traffic is touched).
func chaosWrapHandler(spec string, h http.Handler) (http.Handler, error) {
	if spec == "" {
		return h, nil
	}
	plan, err := chaos.ParsePlan(spec)
	if err != nil {
		return nil, err
	}
	return chaos.NewMiddleware(plan, h), nil
}

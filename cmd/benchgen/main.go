// Command benchgen generates the benchmark suite of the paper's Table 1
// as AIGER files, or prints the Table-1-style detail table.
//
// Usage:
//
//	benchgen -table -scale small          # print Table 1 for the scale
//	benchgen -out bench/ -scale small     # write AIGER files
//	benchgen -name mult -double 3 -out .  # one circuit, doubled 3 times
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dacpara/internal/aig"
	"dacpara/internal/bench"
	"dacpara/internal/report"
)

func main() {
	var (
		table  = flag.Bool("table", false, "print the benchmark detail table (paper Table 1)")
		outDir = flag.String("out", "", "directory to write AIGER files into")
		scale  = flag.String("scale", "small", "tiny, small, full")
		name   = flag.String("name", "", "generate only the named benchmark")
		double = flag.Int("double", -1, "override the number of doublings")
	)
	flag.Parse()
	sc := parseScale(*scale)

	circuits := bench.Suite(sc)
	if *name != "" {
		var filtered []bench.Circuit
		for _, c := range circuits {
			if c.Name == *name {
				filtered = append(filtered, c)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "benchgen: unknown benchmark %q\n", *name)
			os.Exit(2)
		}
		circuits = filtered
	}

	tbl := report.New(fmt.Sprintf("Benchmark Detail (scale=%s; cf. paper Table 1)", sc),
		"Benchmark", "PIs", "POs", "Area", "Delay", "Sources")
	for _, c := range circuits {
		if *double >= 0 {
			c.Doublings = *double
		}
		a := c.Instantiate(sc)
		st := a.Stats()
		tbl.Row(c.Name, st.PIs, st.POs, st.Ands, st.Delay, c.Source)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, c.Name+".aig")
			if err := a.WriteFile(path); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d ands)\n", path, st.Ands)
		}
		_ = aig.Stats{}
	}
	if *table || *outDir == "" {
		tbl.Render(os.Stdout)
	}
}

func parseScale(s string) bench.Scale {
	switch s {
	case "tiny":
		return bench.ScaleTiny
	case "full":
		return bench.ScaleFull
	default:
		return bench.ScaleSmall
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}

// Command dacsat is a standalone DIMACS front end for the CDCL SAT solver
// that backs the equivalence checker.
//
// Usage:
//
//	dacsat formula.cnf
//	dacsat < formula.cnf
//
// Prints "s SATISFIABLE" with a "v" model line, or "s UNSATISFIABLE";
// exit codes follow the SAT-competition convention (10/20).
package main

import (
	"fmt"
	"io"
	"os"

	"dacpara/internal/sat"
)

func main() {
	var in io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "dacsat:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	s, numVars, err := sat.ParseDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dacsat:", err)
		os.Exit(1)
	}
	if s.Solve() {
		fmt.Println("s SATISFIABLE")
		sat.WriteDIMACSModel(os.Stdout, s, numVars)
		fmt.Fprintf(os.Stderr, "c conflicts=%d decisions=%d propagations=%d\n",
			s.Conflicts, s.Decisions, s.Propagations)
		os.Exit(10)
	}
	fmt.Println("s UNSATISFIABLE")
	fmt.Fprintf(os.Stderr, "c conflicts=%d decisions=%d propagations=%d\n",
		s.Conflicts, s.Decisions, s.Propagations)
	os.Exit(20)
}

// Command perfbench establishes the repository's perf trajectory: it
// sweeps the generated benchmark suite across rewriting engines and
// worker counts with full instrumentation and writes one schema-stable
// BENCH_<date>.json (dacpara-bench/v1) per invocation. Comparing two
// such files — same host, different commits — is how a rewrite of a hot
// path proves itself, and how a regression is caught.
//
// Usage:
//
//	perfbench -scale tiny -workers 1,4                 # full sweep
//	perfbench -circuits sin,mult -engines dacpara,abc  # focused sweep
//	perfbench -pass rewrite,refactor,resub             # cross-pass sweep
//	perfbench -partition 0,4 -engines dacpara          # whole vs partitioned
//	perfbench -validate BENCH_2026-08-06.json          # schema check
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dacpara"
	"dacpara/internal/metrics"
	"dacpara/internal/refactor"
	"dacpara/internal/resub"
)

func main() {
	var (
		scale     = flag.String("scale", "tiny", "suite scale: tiny, small, full")
		engines   = flag.String("engines", "abc,iccad18,dacpara,dac22,tcad23", "comma-separated engines to sweep")
		workers   = flag.String("workers", "1,4", "comma-separated worker counts")
		circuits  = flag.String("circuits", "", "comma-separated circuit names (default: whole suite)")
		passNames = flag.String("pass", "rewrite", "comma-separated passes to sweep: rewrite, refactor, resub (refactor/resub run their DACPara-style parallel executors)")
		passes    = flag.Int("passes", 1, "rewriting passes per run")
		cutKs     = flag.String("k", "4", "comma-separated rewriting cut widths for the rewrite pass (4..6; 5/6 use the large-cut NPN library)")
		parts     = flag.String("partition", "0", "comma-separated shard counts for the rewrite pass (0 = whole-circuit; N>=2 runs RewritePartitioned and records the partition section)")
		out       = flag.String("out", "", "output file (default BENCH_<date>.json)")
		validate  = flag.String("validate", "", "validate an existing BENCH json against the schema and exit")
		quiet     = flag.Bool("q", false, "suppress per-run progress lines")
	)
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		fatal(err)
		f, err := metrics.ParseBench(data)
		fatal(err)
		fmt.Printf("%s: valid %s, %d runs\n", *validate, f.Schema, len(f.Runs))
		return
	}

	sc := parseScale(*scale)
	names := dacpara.BenchmarkNames(sc)
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	workerCounts, err := parseInts(*workers)
	fatal(err)
	if len(workerCounts) == 0 {
		fatal(fmt.Errorf("no worker counts"))
	}
	cutWidths, err := parseInts(*cutKs)
	fatal(err)
	if len(cutWidths) == 0 {
		cutWidths = []int{4}
	}
	for _, k := range cutWidths {
		if k < 4 || k > dacpara.MaxCutWidth {
			fatal(fmt.Errorf("cut width %d outside 4..%d", k, dacpara.MaxCutWidth))
		}
	}
	shardCounts, err := parseShards(*parts)
	fatal(err)
	if len(shardCounts) == 0 {
		shardCounts = []int{0}
	}

	file := &metrics.BenchFile{
		Schema:  metrics.SchemaBench,
		Created: time.Now().UTC().Format(time.RFC3339),
		Host: metrics.BenchHost{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Scale:  sc.String(),
		Passes: *passes,
	}

	coll := dacpara.NewMetrics()
	record := func(name, pass, eng string, w, k, part int, res dacpara.Result, runErr error, mem *metrics.BenchMem) {
		run := metrics.BenchRun{
			Circuit:   name,
			Pass:      pass,
			Engine:    eng,
			Workers:   w,
			Partition: part,
			Metrics:   res.Metrics,
			Mem:       mem,
		}
		if k > 4 {
			run.K = k
		}
		if runErr != nil {
			run.Error = runErr.Error()
		}
		file.Runs = append(file.Runs, run)
		if !*quiet {
			fmt.Printf("%-14s %-9s %-16s w=%-2d k=%d p=%d ands %6d -> %6d  %8.3fs  aborts=%d wasted=%.2f%%  alloc=%.1fMB/%d gc=%d\n",
				name, pass, eng, w, max(k, 4), part, res.InitialAnds, res.FinalAnds, res.Duration.Seconds(),
				res.Aborts, 100*res.WastedFraction(),
				float64(mem.Bytes)/(1<<20), mem.Allocs, mem.NumGC)
		}
	}
	for _, name := range names {
		for _, pass := range strings.Split(*passNames, ",") {
			switch pass = strings.TrimSpace(pass); pass {
			case "rewrite":
				for _, eng := range strings.Split(*engines, ",") {
					for _, w := range workerCounts {
						for _, k := range cutWidths {
							for _, part := range shardCounts {
								net, err := dacpara.Generate(name, sc)
								fatal(err)
								cfg := dacpara.Config{Workers: w, Passes: *passes, Metrics: coll}
								if k > 4 {
									cfg.K = k
								}
								var res dacpara.Result
								var runErr error
								mem := measureMem(func() {
									if part >= 2 {
										res, runErr = dacpara.RewritePartitioned(net, dacpara.Engine(eng), cfg, part)
									} else {
										res, runErr = dacpara.Rewrite(net, dacpara.Engine(eng), cfg)
									}
								})
								record(name, pass, eng, w, k, part, res, runErr, mem)
							}
						}
					}
				}
			case "refactor":
				for _, w := range workerCounts {
					net, err := dacpara.Generate(name, sc)
					fatal(err)
					var res dacpara.Result
					var runErr error
					mem := measureMem(func() {
						res, runErr = refactor.RunParallelCtx(context.Background(), net,
							refactor.Config{Metrics: coll}, w)
					})
					record(name, pass, res.Engine, w, 4, 0, res, runErr, mem)
				}
			case "resub":
				for _, w := range workerCounts {
					net, err := dacpara.Generate(name, sc)
					fatal(err)
					var res dacpara.Result
					var runErr error
					mem := measureMem(func() {
						res, runErr = resub.RunParallelCtx(context.Background(), net,
							resub.Config{Metrics: coll}, w)
					})
					record(name, pass, res.Engine, w, 4, 0, res, runErr, mem)
				}
			default:
				fatal(fmt.Errorf("unknown pass %q (want rewrite, refactor or resub)", pass))
			}
		}
	}

	// Self-check before writing: an invalid trajectory point is worse
	// than no point.
	fatal(file.Validate())

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	data, err := file.JSON()
	fatal(err)
	fatal(os.WriteFile(path, data, 0o644))
	fmt.Printf("wrote %s (%d runs)\n", path, len(file.Runs))
}

func parseScale(s string) dacpara.Scale {
	switch s {
	case "tiny":
		return dacpara.ScaleTiny
	case "small":
		return dacpara.ScaleSmall
	case "full":
		return dacpara.ScaleFull
	}
	fatal(fmt.Errorf("unknown scale %q", s))
	panic("unreachable")
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseShards parses the -partition list: 0 means whole-circuit, any
// other value must be a legal shard count.
func parseShards(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 || n == 1 || n > dacpara.MaxPartitionShards {
			return nil, fmt.Errorf("bad shard count %q (want 0 or 2..%d)", f, dacpara.MaxPartitionShards)
		}
		out = append(out, n)
	}
	return out, nil
}

// measureMem runs fn between two runtime.MemStats snapshots and returns
// the deltas as the run's mem section. The counters are process-wide;
// perfbench executes runs one at a time, which keeps the deltas
// attributable to fn.
func measureMem(fn func()) *metrics.BenchMem {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return &metrics.BenchMem{
		Allocs:    after.Mallocs - before.Mallocs,
		Bytes:     after.TotalAlloc - before.TotalAlloc,
		GCPauseNs: after.PauseTotalNs - before.PauseTotalNs,
		NumGC:     after.NumGC - before.NumGC,
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
}

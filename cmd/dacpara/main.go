// Command dacpara rewrites an AIGER circuit with any of the implemented
// engines and reports area/delay/runtime, optionally verifying the result
// against the input with the built-in equivalence checker.
//
// Usage:
//
//	dacpara -in circuit.aig -out optimized.aig -engine dacpara -threads 8
//	dacpara -gen mult -scale small -engine abc -verify
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"dacpara"
)

func main() {
	var (
		in        = flag.String("in", "", "input AIGER file (ASCII or binary)")
		gen       = flag.String("gen", "", "generate a named benchmark instead of reading a file (see -list)")
		scale     = flag.String("scale", "small", "generated benchmark scale: tiny, small, full")
		out       = flag.String("out", "", "output AIGER file (optional)")
		engine    = flag.String("engine", "dacpara", "engine: abc, iccad18, dacpara, dac22, tcad23")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		passes    = flag.Int("passes", 1, "rewriting passes")
		cutK      = flag.Int("k", 0, "rewriting cut width, 4..6 (0 = classic 4-input; 5/6 use the large-cut NPN library, see -rewlib)")
		rewlibF   = flag.String("rewlib", "", "preload a dacpara-rewlib/v1 structure-library file (see cmd/rewlibgen); classes not in the file are synthesized on demand")
		p1        = flag.Bool("p1", false, "use the paper's P1 configuration (8 cuts, 5 structures, 2 passes)")
		p2        = flag.Bool("p2", false, "use the paper's P2 configuration (unlimited, 1 pass)")
		zero      = flag.Bool("z", false, "also apply zero-gain rewrites")
		level     = flag.Bool("l", false, "preserve levels: reject depth-increasing rewrites")
		partN     = flag.Int("partition", 0, "split the circuit into N shards along low-coupling frontiers, rewrite each shard independently on local goroutines, CEC-verify per shard and whole, and stitch (0 = whole-circuit run)")
		guard     = flag.Bool("guard", false, "guarded execution: verify each engine run on a scratch copy and degrade dacpara -> iccad18 -> abc on failure")
		deadln    = flag.Duration("guard-deadline", 0, "with -guard: per-attempt wall-clock deadline (0 = none)")
		verify    = flag.Bool("verify", false, "equivalence-check the result against the input")
		simOnly   = flag.Bool("sim-only", false, "verification by simulation only (for large circuits)")
		lut       = flag.Int("lut", 0, "after optimizing, also map into k-input LUTs and report mapped area/depth")
		script    = flag.String("script", "", "run an ABC-style flow instead of one engine, e.g. \"b; rw; rf -p; rs -p -w=8; b\" (per-step flags: -z zero-gain, -p parallel refactor/resub, -w=N workers; use 'resyn2' for the classic script)")
		list      = flag.Bool("list", false, "list generatable benchmarks and exit")
		stats     = flag.Bool("stats", false, "collect engine metrics and print a per-phase summary")
		statsJSON = flag.String("stats-json", "", "collect engine metrics and write the snapshot(s) as JSON to this file ('-' for stdout)")
		traceConf = flag.Int("trace-conflicts", 0, "with -stats/-stats-json: sample up to N aborted activities per worker into the snapshot")
		pprofPfx  = flag.String("pprof", "", "write CPU and heap profiles around the run to <prefix>.cpu.pprof and <prefix>.heap.pprof")
	)
	flag.Parse()

	if *list {
		for _, n := range dacpara.BenchmarkNames(parseScale(*scale)) {
			fmt.Println(n)
		}
		return
	}

	var net *dacpara.Network
	var err error
	switch {
	case *gen != "":
		net, err = dacpara.Generate(*gen, parseScale(*scale))
	case *in != "":
		net, err = dacpara.ReadAIGER(*in)
	default:
		fmt.Fprintln(os.Stderr, "dacpara: need -in or -gen (see -h)")
		os.Exit(2)
	}
	fatal(err)

	cfg := dacpara.Config{Workers: *threads, Passes: *passes, ZeroGain: *zero, PreserveDelay: *level}
	if *p1 {
		cfg = dacpara.P1()
		cfg.Workers = *threads
	}
	if *p2 {
		cfg = dacpara.P2()
		cfg.Workers = *threads
	}
	if *cutK != 0 && (*cutK < 4 || *cutK > dacpara.MaxCutWidth) {
		fmt.Fprintf(os.Stderr, "dacpara: -k %d out of range 4..%d\n", *cutK, dacpara.MaxCutWidth)
		os.Exit(2)
	}
	cfg.K = *cutK
	if *rewlibF != "" {
		loaded, rejected, err := dacpara.LoadRewlib(*rewlibF)
		fatal(err)
		if rejected > 0 {
			fmt.Fprintf(os.Stderr, "dacpara: rewlib %s: %d corrupt classes rejected (%d loaded)\n", *rewlibF, rejected, loaded)
		}
	}
	if *stats || *statsJSON != "" {
		cfg.Metrics = dacpara.NewMetrics()
		cfg.Metrics.TraceConflicts(*traceConf)
	}
	if *partN != 0 && (*partN < 2 || *partN > dacpara.MaxPartitionShards) {
		fmt.Fprintf(os.Stderr, "dacpara: -partition %d out of range 2..%d\n", *partN, dacpara.MaxPartitionShards)
		os.Exit(2)
	}
	if *partN >= 2 && *guard {
		fmt.Fprintln(os.Stderr, "dacpara: -partition and -guard are mutually exclusive (partitioned runs verify every shard already)")
		os.Exit(2)
	}

	if *pprofPfx != "" {
		f, err := os.Create(*pprofPfx + ".cpu.pprof")
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			h, err := os.Create(*pprofPfx + ".heap.pprof")
			fatal(err)
			defer h.Close()
			fatal(pprof.WriteHeapProfile(h))
		}()
	}

	var golden *dacpara.Network
	if *verify {
		golden = net.Clone()
	}

	before := net.Stats()
	var snapshots []*dacpara.MetricsSnapshot
	if *script != "" {
		text := *script
		switch text {
		case "resyn2":
			text = dacpara.Resyn2
		case "resyn2rs":
			text = dacpara.Resyn2rs
		}
		if *partN >= 2 {
			res, err := dacpara.FlowPartitioned(net, text, cfg, *partN)
			fatal(err)
			printPartitioned(res)
			if res.Metrics != nil {
				snapshots = append(snapshots, res.Metrics)
			}
		} else {
			runFlow(&net, text, cfg, *guard, *deadln, before.Ands, before.Delay, &snapshots)
		}
	} else if *partN >= 2 {
		res, err := dacpara.RewritePartitioned(net, dacpara.Engine(*engine), cfg, *partN)
		fatal(err)
		printPartitioned(res)
		if res.Metrics != nil {
			snapshots = append(snapshots, res.Metrics)
		}
	} else {
		var res dacpara.Result
		var err error
		if *guard {
			var rep *dacpara.GuardReport
			res, rep, err = dacpara.RewriteGuarded(net, dacpara.Engine(*engine), cfg, dacpara.GuardOptions{Deadline: *deadln})
			printReport(rep)
		} else {
			res, err = dacpara.Rewrite(net, dacpara.Engine(*engine), cfg)
		}
		fatal(err)
		after := net.Stats()
		fmt.Printf("engine=%s threads=%d time=%.3fs\n", res.Engine, res.Threads, res.Duration.Seconds())
		fmt.Printf("area  %d -> %d (reduction %d, %.2f%%)\n", before.Ands, after.Ands,
			res.AreaReduction(), 100*float64(res.AreaReduction())/float64(max(before.Ands, 1)))
		fmt.Printf("delay %d -> %d\n", before.Delay, after.Delay)
		fmt.Printf("replacements=%d attempts=%d stale=%d commits=%d aborts=%d\n",
			res.Replacements, res.Attempts, res.Stale, res.Commits, res.Aborts)
		if res.Metrics != nil {
			snapshots = append(snapshots, res.Metrics)
		}
	}

	if *stats {
		for _, s := range snapshots {
			s.Format(os.Stdout)
		}
	}
	if *statsJSON != "" {
		fatal(writeSnapshots(*statsJSON, snapshots))
	}

	if *lut > 0 {
		m, err := dacpara.MapLUT(net, *lut)
		fatal(err)
		fmt.Printf("mapped: %d LUT%d, depth %d\n", m.Area, *lut, m.Depth)
	}

	if *verify {
		var eq bool
		if *simOnly {
			eq, err = dacpara.EquivalentFast(golden, net)
		} else {
			eq, err = dacpara.Equivalent(golden, net)
		}
		fatal(err)
		if !eq {
			fmt.Fprintln(os.Stderr, "dacpara: EQUIVALENCE CHECK FAILED")
			os.Exit(1)
		}
		fmt.Println("equivalence check passed")
	}

	if *out != "" {
		fatal(net.WriteFile(*out))
	}
}

// runFlow executes the flow script whole-circuit (the non-partitioned
// path), prints the per-step table and total, and replaces *netp with
// the final network.
func runFlow(netp **dacpara.Network, text string, cfg dacpara.Config, guard bool, deadln time.Duration, beforeAnds int, beforeDelay int32, snapshots *[]*dacpara.MetricsSnapshot) {
	var results []dacpara.Result
	var final *dacpara.Network
	var err error
	if guard {
		var reports []*dacpara.GuardReport
		results, reports, final, err = dacpara.FlowGuarded(*netp, text, cfg, dacpara.GuardOptions{Deadline: deadln})
		for _, rep := range reports {
			printReport(rep)
		}
	} else {
		results, final, err = dacpara.Flow(*netp, text, cfg)
	}
	fatal(err)
	*netp = final
	for _, r := range results {
		fmt.Printf("%-16s area %7d -> %7d  delay %5d -> %5d  %8.3fs\n",
			r.Engine, r.InitialAnds, r.FinalAnds, r.InitialDelay, r.FinalDelay,
			r.Duration.Seconds())
		if r.Metrics != nil {
			*snapshots = append(*snapshots, r.Metrics)
		}
	}
	after := (*netp).Stats()
	fmt.Printf("flow total: area %d -> %d, delay %d -> %d\n",
		beforeAnds, after.Ands, beforeDelay, after.Delay)
}

// printPartitioned reports a partitioned run: overall QoR from the
// summary Result plus the split shape when metrics were collected.
func printPartitioned(res dacpara.Result) {
	fmt.Printf("engine=%s threads=%d time=%.3fs\n", res.Engine, res.Threads, res.Duration.Seconds())
	fmt.Printf("area  %d -> %d (reduction %d, %.2f%%)\n", res.InitialAnds, res.FinalAnds,
		res.AreaReduction(), 100*float64(res.AreaReduction())/float64(max(res.InitialAnds, 1)))
	fmt.Printf("delay %d -> %d\n", res.InitialDelay, res.FinalDelay)
	fmt.Printf("replacements=%d attempts=%d stale=%d commits=%d aborts=%d\n",
		res.Replacements, res.Attempts, res.Stale, res.Commits, res.Aborts)
	if res.Metrics != nil && res.Metrics.Partition != nil {
		p := res.Metrics.Partition
		fmt.Printf("partition: shards=%d crossing=%d balance=%.2f rejected=%d\n",
			p.Shards, p.CrossingEdges, p.Balance, p.Rejected)
	}
}

func parseScale(s string) dacpara.Scale {
	switch s {
	case "tiny":
		return dacpara.ScaleTiny
	case "full":
		return dacpara.ScaleFull
	default:
		return dacpara.ScaleSmall
	}
}

// writeSnapshots emits the collected snapshots as JSON: one object for a
// single-engine run, an array for a multi-step flow.
func writeSnapshots(path string, snapshots []*dacpara.MetricsSnapshot) error {
	var payload any
	if len(snapshots) == 1 {
		payload = snapshots[0]
	} else {
		payload = snapshots
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func printReport(rep *dacpara.GuardReport) {
	if rep == nil {
		return
	}
	fmt.Println(rep)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dacpara:", err)
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

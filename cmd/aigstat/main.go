// Command aigstat prints network statistics for AIGER files: PI/PO/AND
// counts, delay (depth), and a level histogram — the per-level worklist
// sizes DACPara's nodeDividing would produce.
package main

import (
	"flag"
	"fmt"
	"os"

	"dacpara/internal/aig"
	"dacpara/internal/core"
)

func main() {
	hist := flag.Bool("levels", false, "print the level histogram (DACPara worklist sizes)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: aigstat [-levels] file.aig ...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		a, err := aig.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigstat:", err)
			os.Exit(1)
		}
		st := a.Stats()
		fmt.Printf("%s: pi=%d po=%d and=%d delay=%d\n", path, st.PIs, st.POs, st.Ands, st.Delay)
		if *hist {
			for lv, wl := range core.NodeDividing(a) {
				fmt.Printf("  level %4d: %d nodes\n", lv+1, len(wl))
			}
		}
	}
}

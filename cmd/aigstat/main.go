// Command aigstat prints network statistics for AIGER files: PI/PO/AND
// counts, delay (depth), and a level histogram — the per-level worklist
// sizes DACPara's nodeDividing would produce.
//
// With -json it emits one JSON object per file using the same field
// names as the dacparad job-status payload (pi, po, and, delay — see
// internal/serve.NetStats), so scripts and the daemon share one schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dacpara/internal/aig"
	"dacpara/internal/core"
	"dacpara/internal/partition"
	"dacpara/internal/serve"
)

// fileStat is the -json record: the service's NetStats schema plus the
// file name, the structural digest (the service's cache-key input half),
// and optionally the level histogram.
type fileStat struct {
	File string `json:"file"`
	serve.NetStats
	Digest    string               `json:"digest,omitempty"`
	Levels    []int                `json:"levels,omitempty"`
	Frontiers []partition.Frontier `json:"frontiers,omitempty"`
}

func main() {
	hist := flag.Bool("levels", false, "print the level histogram (DACPara worklist sizes)")
	frontN := flag.Int("frontiers", 0, "print the top-N candidate partition frontiers (fewest crossing edges first) that `dacpara -partition` would cut along")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON (job-status field names)")
	digest := flag.Bool("digest", false, "with -json: include the structural digest dacparad keys its result cache by")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: aigstat [-levels] [-frontiers N] [-json [-digest]] file.aig ...")
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, path := range flag.Args() {
		a, err := aig.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigstat:", err)
			os.Exit(1)
		}
		if *asJSON {
			st := fileStat{File: path, NetStats: serve.NetStatsOf(a)}
			if *digest {
				st.Digest = serve.StructuralDigest(a)
			}
			if *hist {
				for _, wl := range core.NodeDividing(a) {
					st.Levels = append(st.Levels, len(wl))
				}
			}
			if *frontN > 0 {
				st.Frontiers = topFrontiers(a, *frontN)
			}
			if err := enc.Encode(st); err != nil {
				fmt.Fprintln(os.Stderr, "aigstat:", err)
				os.Exit(1)
			}
			continue
		}
		st := a.Stats()
		fmt.Printf("%s: pi=%d po=%d and=%d delay=%d\n", path, st.PIs, st.POs, st.Ands, st.Delay)
		if *hist {
			for lv, wl := range core.NodeDividing(a) {
				fmt.Printf("  level %4d: %d nodes\n", lv+1, len(wl))
			}
		}
		if *frontN > 0 {
			fs := topFrontiers(a, *frontN)
			if len(fs) == 0 {
				fmt.Println("  no candidate frontiers (circuit too shallow to cut)")
			}
			for _, f := range fs {
				fmt.Printf("  frontier after level %4d: crossing=%d shards %d/%d\n",
					f.Level, f.Crossing, f.Below, f.Above)
			}
		}
	}
}

// topFrontiers returns the N cheapest candidate cuts of the level sweep
// that drives partition.Select.
func topFrontiers(a *aig.AIG, n int) []partition.Frontier {
	fs := partition.SweepFrontiers(a)
	if len(fs) > n {
		fs = fs[:n]
	}
	return fs
}

#!/usr/bin/env bash
# Smoke test for the dacparad daemon: boot it, submit a circuit over
# HTTP, poll the job to completion, validate the metrics snapshot
# schema, exercise a mid-run cancel, and shut down via SIGTERM. Used by
# CI and runnable locally from the repo root:
#
#   ./scripts/smoke_dacparad.sh [port]
set -euo pipefail

PORT="${1:-18080}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

# jq when available, a grep fallback otherwise (both present on
# ubuntu-latest; the fallback keeps the script runnable anywhere).
json_field() { # json_field <file> <jq-expr> <grep-regex>
  if command -v jq >/dev/null 2>&1; then
    jq -r "$2" "$1"
  else
    grep -o "$3" "$1" | head -1 | sed 's|.*: *||; s|[",]||g'
  fi
}

echo "smoke: building dacparad + benchgen"
go build -o "$WORK/dacparad" ./cmd/dacparad
go build -o "$WORK/benchgen" ./cmd/benchgen

echo "smoke: generating the tiny suite"
"$WORK/benchgen" -scale tiny -name voter -out "$WORK"
AIG="$(ls "$WORK"/voter*.aig | head -1)"
[[ -s "$AIG" ]] || fail "benchgen produced no voter AIGER"

echo "smoke: booting dacparad on :$PORT"
"$WORK/dacparad" -addr "127.0.0.1:$PORT" -max-jobs 2 -queue 8 -job-workers 2 &
DAEMON_PID=$!

for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  [[ $i -eq 100 ]] && fail "daemon never became healthy"
  sleep 0.1
done
echo "smoke: daemon healthy"

# --- happy path: submit, poll, result, metrics schema ---------------
curl -sf -X POST --data-binary "@$AIG" \
  "$BASE/jobs?engine=dacpara&workers=2&verify=1" >"$WORK/submit.json" \
  || fail "submission rejected"
JOB="$(json_field "$WORK/submit.json" .id '"id": *"[^"]*"')"
[[ "$JOB" == j* ]] || fail "no job id in submit response: $(cat "$WORK/submit.json")"
echo "smoke: submitted $JOB"

STATE=""
for i in $(seq 1 300); do
  curl -sf "$BASE/jobs/$JOB" >"$WORK/status.json" || fail "status poll failed"
  STATE="$(json_field "$WORK/status.json" .state '"state": *"[^"]*"')"
  case "$STATE" in
    done) break ;;
    failed|cancelled) fail "job $JOB ended $STATE: $(cat "$WORK/status.json")" ;;
  esac
  sleep 0.1
done
[[ "$STATE" == done ]] || fail "job $JOB stuck in '$STATE'"
echo "smoke: $JOB done"

grep -q '"cache_hit"' "$WORK/status.json" || fail "status payload missing cache_hit"
grep -q '"equivalent": *true' "$WORK/status.json" || fail "verify did not prove equivalence: $(cat "$WORK/status.json")"

curl -sf -o "$WORK/out.aig" "$BASE/jobs/$JOB/result" || fail "result download failed"
head -c 3 "$WORK/out.aig" | grep -q '^aig' || fail "result is not binary AIGER"

curl -sf "$BASE/jobs/$JOB/metrics" >"$WORK/metrics.json" || fail "metrics download failed"
SCHEMA="$(json_field "$WORK/metrics.json" .schema '"schema": *"[^"]*"')"
[[ "$SCHEMA" == "dacpara-metrics/v1" ]] || fail "metrics schema '$SCHEMA', want dacpara-metrics/v1"
if command -v jq >/dev/null 2>&1; then
  PHASES="$(jq '.phases | length' "$WORK/metrics.json")"
  [[ "$PHASES" -ge 1 ]] || fail "metrics snapshot has no phases"
  jq -e '.qor.final_ands >= 0' "$WORK/metrics.json" >/dev/null || fail "metrics snapshot has no QoR"
else
  grep -q '"phases": *\[' "$WORK/metrics.json" || fail "metrics snapshot has no phases"
fi
echo "smoke: metrics schema ok"

# --- cache: resubmitting identical work is a hit --------------------
curl -sf -X POST --data-binary "@$AIG" \
  "$BASE/jobs?engine=dacpara&workers=2&verify=1" >"$WORK/resubmit.json" \
  || fail "resubmission rejected"
JOB2="$(json_field "$WORK/resubmit.json" .id '"id": *"[^"]*"')"
for i in $(seq 1 300); do
  curl -sf "$BASE/jobs/$JOB2" >"$WORK/status2.json"
  [[ "$(json_field "$WORK/status2.json" .state '"state": *"[^"]*"')" == done ]] && break
  sleep 0.1
done
grep -q '"cache_hit": *true' "$WORK/status2.json" || fail "identical resubmission not served from cache: $(cat "$WORK/status2.json")"
echo "smoke: cache hit ok"

# --- mid-run cancel -------------------------------------------------
curl -sf -X POST --data-binary "@$AIG" \
  "$BASE/jobs?engine=dacpara&workers=2&passes=2000&zero_gain=1" >"$WORK/slow.json" \
  || fail "slow submission rejected"
SLOW="$(json_field "$WORK/slow.json" .id '"id": *"[^"]*"')"
for i in $(seq 1 100); do
  curl -sf "$BASE/jobs/$SLOW" >"$WORK/slowstat.json"
  [[ "$(json_field "$WORK/slowstat.json" .state '"state": *"[^"]*"')" == running ]] && break
  [[ $i -eq 100 ]] && fail "slow job never started: $(cat "$WORK/slowstat.json")"
  sleep 0.05
done
sleep 0.2  # let it get into the level loops: this is a *mid-run* cancel
curl -sf -X POST "$BASE/jobs/$SLOW/cancel" >/dev/null || fail "cancel request failed"
for i in $(seq 1 100); do
  curl -sf "$BASE/jobs/$SLOW" >"$WORK/slowstat.json"
  STATE="$(json_field "$WORK/slowstat.json" .state '"state": *"[^"]*"')"
  [[ "$STATE" == cancelled ]] && break
  [[ "$STATE" == done || "$STATE" == failed ]] && fail "cancelled job ended $STATE"
  [[ $i -eq 100 ]] && fail "cancel not observed: still '$STATE'"
  sleep 0.1
done
echo "smoke: mid-run cancel ok"

# --- process metrics + graceful shutdown ----------------------------
curl -sf "$BASE/metrics" >"$WORK/proc.json" || fail "process metrics failed"
grep -q '"dacparad-process/v1"' "$WORK/proc.json" || fail "process metrics schema: $(cat "$WORK/proc.json")"

kill -TERM "$DAEMON_PID"
for i in $(seq 1 100); do
  kill -0 "$DAEMON_PID" 2>/dev/null || { DAEMON_PID=""; break; }
  [[ $i -eq 100 ]] && fail "daemon did not exit on SIGTERM"
  sleep 0.1
done
echo "smoke: clean SIGTERM drain"
echo "smoke: PASS"

#!/usr/bin/env bash
# Smoke test for the dacparad daemon: boot it, submit a circuit over
# HTTP, poll the job to completion, validate the metrics snapshot
# schema, exercise a mid-run cancel, and shut down via SIGTERM. Used by
# CI and runnable locally from the repo root:
#
#   ./scripts/smoke_dacparad.sh [port]
set -euo pipefail

PORT="${1:-18080}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DAEMON_PID=""
W1_PID=""
W2_PID=""
W3_PID=""

cleanup() {
  for pid in "$DAEMON_PID" "$W1_PID" "$W2_PID" "$W3_PID"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

# jq when available, a grep fallback otherwise (both present on
# ubuntu-latest; the fallback keeps the script runnable anywhere).
json_field() { # json_field <file> <jq-expr> <grep-regex>
  if command -v jq >/dev/null 2>&1; then
    jq -r "$2" "$1"
  else
    grep -o "$3" "$1" | head -1 | sed 's|.*: *||; s|[",]||g'
  fi
}

echo "smoke: building dacparad + benchgen"
go build -o "$WORK/dacparad" ./cmd/dacparad
go build -o "$WORK/benchgen" ./cmd/benchgen

echo "smoke: generating the tiny suite"
"$WORK/benchgen" -scale tiny -name voter -out "$WORK"
AIG="$(ls "$WORK"/voter*.aig | head -1)"
[[ -s "$AIG" ]] || fail "benchgen produced no voter AIGER"

echo "smoke: booting dacparad on :$PORT"
"$WORK/dacparad" -addr "127.0.0.1:$PORT" -max-jobs 2 -queue 8 -job-workers 2 &
DAEMON_PID=$!

for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  [[ $i -eq 100 ]] && fail "daemon never became healthy"
  sleep 0.1
done
echo "smoke: daemon healthy"

# --- happy path: submit, poll, result, metrics schema ---------------
curl -sf -X POST --data-binary "@$AIG" \
  "$BASE/jobs?engine=dacpara&workers=2&verify=1" >"$WORK/submit.json" \
  || fail "submission rejected"
JOB="$(json_field "$WORK/submit.json" .id '"id": *"[^"]*"')"
[[ "$JOB" == j* ]] || fail "no job id in submit response: $(cat "$WORK/submit.json")"
echo "smoke: submitted $JOB"

STATE=""
for i in $(seq 1 300); do
  curl -sf "$BASE/jobs/$JOB" >"$WORK/status.json" || fail "status poll failed"
  STATE="$(json_field "$WORK/status.json" .state '"state": *"[^"]*"')"
  case "$STATE" in
    done) break ;;
    failed|cancelled) fail "job $JOB ended $STATE: $(cat "$WORK/status.json")" ;;
  esac
  sleep 0.1
done
[[ "$STATE" == done ]] || fail "job $JOB stuck in '$STATE'"
echo "smoke: $JOB done"

grep -q '"cache_hit"' "$WORK/status.json" || fail "status payload missing cache_hit"
grep -q '"equivalent": *true' "$WORK/status.json" || fail "verify did not prove equivalence: $(cat "$WORK/status.json")"

curl -sf -o "$WORK/out.aig" "$BASE/jobs/$JOB/result" || fail "result download failed"
head -c 3 "$WORK/out.aig" | grep -q '^aig' || fail "result is not binary AIGER"

curl -sf "$BASE/jobs/$JOB/metrics" >"$WORK/metrics.json" || fail "metrics download failed"
SCHEMA="$(json_field "$WORK/metrics.json" .schema '"schema": *"[^"]*"')"
[[ "$SCHEMA" == "dacpara-metrics/v1" ]] || fail "metrics schema '$SCHEMA', want dacpara-metrics/v1"
if command -v jq >/dev/null 2>&1; then
  PHASES="$(jq '.phases | length' "$WORK/metrics.json")"
  [[ "$PHASES" -ge 1 ]] || fail "metrics snapshot has no phases"
  jq -e '.qor.final_ands >= 0' "$WORK/metrics.json" >/dev/null || fail "metrics snapshot has no QoR"
else
  grep -q '"phases": *\[' "$WORK/metrics.json" || fail "metrics snapshot has no phases"
fi
echo "smoke: metrics schema ok"

# --- cache: resubmitting identical work is a hit --------------------
curl -sf -X POST --data-binary "@$AIG" \
  "$BASE/jobs?engine=dacpara&workers=2&verify=1" >"$WORK/resubmit.json" \
  || fail "resubmission rejected"
JOB2="$(json_field "$WORK/resubmit.json" .id '"id": *"[^"]*"')"
for i in $(seq 1 300); do
  curl -sf "$BASE/jobs/$JOB2" >"$WORK/status2.json"
  [[ "$(json_field "$WORK/status2.json" .state '"state": *"[^"]*"')" == done ]] && break
  sleep 0.1
done
grep -q '"cache_hit": *true' "$WORK/status2.json" || fail "identical resubmission not served from cache: $(cat "$WORK/status2.json")"
echo "smoke: cache hit ok"

# --- mid-run cancel -------------------------------------------------
curl -sf -X POST --data-binary "@$AIG" \
  "$BASE/jobs?engine=dacpara&workers=2&passes=2000&zero_gain=1" >"$WORK/slow.json" \
  || fail "slow submission rejected"
SLOW="$(json_field "$WORK/slow.json" .id '"id": *"[^"]*"')"
for i in $(seq 1 100); do
  curl -sf "$BASE/jobs/$SLOW" >"$WORK/slowstat.json"
  [[ "$(json_field "$WORK/slowstat.json" .state '"state": *"[^"]*"')" == running ]] && break
  [[ $i -eq 100 ]] && fail "slow job never started: $(cat "$WORK/slowstat.json")"
  sleep 0.05
done
sleep 0.2  # let it get into the level loops: this is a *mid-run* cancel
curl -sf -X POST "$BASE/jobs/$SLOW/cancel" >/dev/null || fail "cancel request failed"
for i in $(seq 1 100); do
  curl -sf "$BASE/jobs/$SLOW" >"$WORK/slowstat.json"
  STATE="$(json_field "$WORK/slowstat.json" .state '"state": *"[^"]*"')"
  [[ "$STATE" == cancelled ]] && break
  [[ "$STATE" == done || "$STATE" == failed ]] && fail "cancelled job ended $STATE"
  [[ $i -eq 100 ]] && fail "cancel not observed: still '$STATE'"
  sleep 0.1
done
echo "smoke: mid-run cancel ok"

# --- process metrics + graceful shutdown ----------------------------
curl -sf "$BASE/metrics" >"$WORK/proc.json" || fail "process metrics failed"
grep -q '"dacparad-process/v1"' "$WORK/proc.json" || fail "process metrics schema: $(cat "$WORK/proc.json")"

kill -TERM "$DAEMON_PID"
for i in $(seq 1 100); do
  kill -0 "$DAEMON_PID" 2>/dev/null || { DAEMON_PID=""; break; }
  [[ $i -eq 100 ]] && fail "daemon did not exit on SIGTERM"
  sleep 0.1
done
echo "smoke: clean SIGTERM drain"

# --- crash recovery: kill -9 mid-flow, restart, resume --------------
# A durable daemon journals every job and checkpoints flow jobs at step
# boundaries. Boot one on a data dir, submit a slow multi-step flow
# (fast first step -> an early checkpoint; slow rw step for the crash to
# land in), kill -9 once the checkpoint exists, restart on the same data
# dir, and require the SAME job ID to resume from the checkpoint and
# reach done.
DATA="$WORK/data"
echo "smoke: booting durable dacparad on :$PORT (data dir $DATA)"
"$WORK/dacparad" -addr "127.0.0.1:$PORT" -max-jobs 1 -queue 8 -job-workers 2 -data-dir "$DATA" &
DAEMON_PID=$!
for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "durable daemon died during startup"
  [[ $i -eq 100 ]] && fail "durable daemon never became healthy"
  sleep 0.1
done

# Flow script semicolons must be URL-encoded (%3B): "b; rw -z; b".
curl -sf -X POST --data-binary "@$AIG" \
  "$BASE/jobs?flow=b%3B%20rw%20-z%3B%20b&workers=2&passes=2000" >"$WORK/flow.json" \
  || fail "flow submission rejected"
FLOWJOB="$(json_field "$WORK/flow.json" .id '"id": *"[^"]*"')"
[[ "$FLOWJOB" == j* ]] || fail "no job id in flow submit response: $(cat "$WORK/flow.json")"
echo "smoke: submitted flow job $FLOWJOB"

# Wait for the first step checkpoint to hit the disk, then pull the plug.
for i in $(seq 1 200); do
  [[ -s "$DATA/checkpoints/$FLOWJOB.ckpt" ]] && break
  STATE="$(curl -sf "$BASE/jobs/$FLOWJOB" | grep -o '"state": *"[^"]*"' | head -1)"
  case "$STATE" in
    *done*|*failed*|*cancelled*) fail "flow job ended ($STATE) before a checkpoint; crash window missed" ;;
  esac
  [[ $i -eq 200 ]] && fail "no checkpoint file appeared for $FLOWJOB"
  sleep 0.05
done
echo "smoke: checkpoint on disk, kill -9"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "smoke: restarting on the same data dir"
"$WORK/dacparad" -addr "127.0.0.1:$PORT" -max-jobs 1 -queue 8 -job-workers 2 -data-dir "$DATA" >"$WORK/restart.log" &
DAEMON_PID=$!
for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during recovery restart: $(cat "$WORK/restart.log")"
  [[ $i -eq 100 ]] && fail "daemon never became healthy after restart"
  sleep 0.1
done
grep -q "recovered" "$WORK/restart.log" || fail "restart did not report recovery: $(cat "$WORK/restart.log")"

STATE=""
for i in $(seq 1 600); do
  curl -sf "$BASE/jobs/$FLOWJOB" >"$WORK/flowstat.json" || fail "recovered job $FLOWJOB unknown after restart"
  STATE="$(json_field "$WORK/flowstat.json" .state '"state": *"[^"]*"')"
  case "$STATE" in
    done) break ;;
    failed|cancelled|deadline_exceeded) fail "recovered job $FLOWJOB ended $STATE: $(cat "$WORK/flowstat.json")" ;;
  esac
  sleep 0.1
done
[[ "$STATE" == done ]] || fail "recovered job $FLOWJOB stuck in '$STATE'"
grep -q '"resumed": *true' "$WORK/flowstat.json" || fail "recovered job did not resume: $(cat "$WORK/flowstat.json")"
grep -q '"resume_step": *[1-9]' "$WORK/flowstat.json" || fail "recovered job restarted from step 0: $(cat "$WORK/flowstat.json")"
curl -sf -o "$WORK/resumed.aig" "$BASE/jobs/$FLOWJOB/result" || fail "resumed result download failed"
head -c 3 "$WORK/resumed.aig" | grep -q '^aig' || fail "resumed result is not binary AIGER"
echo "smoke: kill -9 recovery + checkpoint resume ok"

kill -TERM "$DAEMON_PID"
for i in $(seq 1 100); do
  kill -0 "$DAEMON_PID" 2>/dev/null || { DAEMON_PID=""; break; }
  [[ $i -eq 100 ]] && fail "durable daemon did not exit on SIGTERM"
  sleep 0.1
done
echo "smoke: clean durable SIGTERM drain"

# --- cluster failover: coordinator + 2 workers, kill -9 the busy one -
# The coordinator leases jobs to pull workers; a worker that stops
# heartbeating loses its lease and its job resumes from the last
# uploaded checkpoint on the survivor. This phase boots that topology,
# submits a slow multi-step flow, kill -9s whichever worker holds the
# lease once the first checkpoint lands, and requires the job to finish
# on the other worker with resume_step >= 1.
CDATA="$WORK/cdata"
echo "smoke: booting coordinator on :$PORT with 2 workers"
"$WORK/dacparad" -role coordinator -addr "127.0.0.1:$PORT" -max-jobs 1 -queue 8 \
  -job-workers 2 -data-dir "$CDATA" -lease 2s -heartbeat 200ms &
DAEMON_PID=$!
for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "coordinator died during startup"
  [[ $i -eq 100 ]] && fail "coordinator never became healthy"
  sleep 0.1
done
"$WORK/dacparad" -role worker -join "$BASE" -worker-id w1 &
W1_PID=$!
"$WORK/dacparad" -role worker -join "$BASE" -worker-id w2 &
W2_PID=$!

for i in $(seq 1 100); do
  curl -sf "$BASE/metrics" >"$WORK/cmetrics.json" || fail "coordinator metrics poll failed"
  grep -q '"live_workers": *2' "$WORK/cmetrics.json" && break
  [[ $i -eq 100 ]] && fail "both workers never registered: $(cat "$WORK/cmetrics.json")"
  sleep 0.1
done
grep -q '"dacparad-cluster/v1"' "$WORK/cmetrics.json" || fail "no cluster section in /metrics: $(cat "$WORK/cmetrics.json")"
echo "smoke: both workers registered"

curl -sf -X POST --data-binary "@$AIG" \
  "$BASE/jobs?flow=b%3B%20rw%20-z%3B%20b&workers=2&passes=2000" >"$WORK/cjob.json" \
  || fail "cluster flow submission rejected"
CJOB="$(json_field "$WORK/cjob.json" .id '"id": *"[^"]*"')"
[[ "$CJOB" == j* ]] || fail "no job id in cluster submit response: $(cat "$WORK/cjob.json")"
echo "smoke: submitted cluster flow job $CJOB"

# Wait for the first worker-uploaded checkpoint to show in the cluster
# metrics, then read which worker holds the lease.
for i in $(seq 1 400); do
  curl -sf "$BASE/metrics" >"$WORK/cmetrics.json"
  grep -qE '"checkpoints_uploaded": *[1-9]' "$WORK/cmetrics.json" && break
  STATE="$(curl -sf "$BASE/jobs/$CJOB" | grep -o '"state": *"[^"]*"' | head -1)"
  case "$STATE" in
    *done*|*failed*|*cancelled*) fail "cluster job ended ($STATE) before a checkpoint; kill window missed" ;;
  esac
  [[ $i -eq 400 ]] && fail "no cluster checkpoint uploaded: $(cat "$WORK/cmetrics.json")"
  sleep 0.05
done

if command -v jq >/dev/null 2>&1; then
  BUSY="$(jq -r '.cluster.workers[] | select(.state=="busy") | .id' "$WORK/cmetrics.json" | head -1)"
  [[ -n "$BUSY" ]] || fail "checkpoint uploaded but no busy worker: $(cat "$WORK/cmetrics.json")"
  case "$BUSY" in
    w1) VICTIM_PID=$W1_PID ;;
    w2) VICTIM_PID=$W2_PID ;;
    *) fail "unknown busy worker '$BUSY'" ;;
  esac
  echo "smoke: kill -9 busy worker $BUSY"
  kill -9 "$VICTIM_PID"
  wait "$VICTIM_PID" 2>/dev/null || true
  [[ "$BUSY" == w1 ]] && W1_PID="" || W2_PID=""
else
  echo "smoke: jq missing; skipping the worker kill (completion still checked)"
fi

STATE=""
for i in $(seq 1 1800); do
  curl -sf "$BASE/jobs/$CJOB" >"$WORK/cstat.json" || fail "cluster job status poll failed"
  STATE="$(json_field "$WORK/cstat.json" .state '"state": *"[^"]*"')"
  case "$STATE" in
    done) break ;;
    failed|cancelled|deadline_exceeded) fail "cluster job ended $STATE: $(cat "$WORK/cstat.json")" ;;
  esac
  sleep 0.1
done
[[ "$STATE" == done ]] || fail "cluster job stuck in '$STATE'"
if command -v jq >/dev/null 2>&1; then
  grep -qE '"resume_step": *[1-9]' "$WORK/cstat.json" || fail "failed-over job restarted from step 0: $(cat "$WORK/cstat.json")"
  grep -qE '"attempts": *[2-9]' "$WORK/cstat.json" || fail "failover did not consume a second lease: $(cat "$WORK/cstat.json")"
  curl -sf "$BASE/metrics" >"$WORK/cmetrics.json"
  jq -e '.cluster.leases_expired >= 1 and .cluster.requeued >= 1' "$WORK/cmetrics.json" >/dev/null \
    || fail "failover counters missing: $(cat "$WORK/cmetrics.json")"
fi
curl -sf -o "$WORK/cluster.aig" "$BASE/jobs/$CJOB/result" || fail "cluster result download failed"
head -c 3 "$WORK/cluster.aig" | grep -q '^aig' || fail "cluster result is not binary AIGER"
echo "smoke: cluster failover ok"

# --- partitioned cluster job: shards fan out, kill a shard's worker --
# A partition=2 submission splits the circuit along a low-coupling
# frontier and dispatches each shard as its own leased task. Killing the
# worker that holds a shard mid-run must cost only that shard's attempt:
# the coordinator re-runs it (on the survivor or degraded-locally) and
# the stitched result still proves equivalent to the input.
echo "smoke: booting replacement worker w3"
"$WORK/dacparad" -role worker -join "$BASE" -worker-id w3 &
W3_PID=$!
for i in $(seq 1 100); do
  curl -sf "$BASE/metrics" >"$WORK/pmetrics.json" || fail "coordinator metrics poll failed"
  grep -q '"live_workers": *2' "$WORK/pmetrics.json" && break
  [[ $i -eq 100 ]] && fail "replacement worker never registered: $(cat "$WORK/pmetrics.json")"
  sleep 0.1
done

curl -sf -X POST --data-binary "@$AIG" \
  "$BASE/jobs?flow=b%3B%20rw%20-z%3B%20b&workers=2&passes=2000&partition=2&verify=1" >"$WORK/pjob.json" \
  || fail "partitioned submission rejected"
PJOB="$(json_field "$WORK/pjob.json" .id '"id": *"[^"]*"')"
[[ "$PJOB" == j* ]] || fail "no job id in partitioned submit response: $(cat "$WORK/pjob.json")"
echo "smoke: submitted partitioned job $PJOB (2 shards)"

# Wait for a worker to go busy on a shard task, then kill it.
if command -v jq >/dev/null 2>&1; then
  BUSY=""
  for i in $(seq 1 400); do
    curl -sf "$BASE/metrics" >"$WORK/pmetrics.json"
    BUSY="$(jq -r '.cluster.workers[] | select(.state=="busy") | .id' "$WORK/pmetrics.json" | head -1)"
    [[ -n "$BUSY" ]] && break
    STATE="$(curl -sf "$BASE/jobs/$PJOB" | grep -o '"state": *"[^"]*"' | head -1)"
    case "$STATE" in
      *done*|*failed*|*cancelled*) fail "partitioned job ended ($STATE) before any shard was leased" ;;
    esac
    [[ $i -eq 400 ]] && fail "no worker went busy on a shard: $(cat "$WORK/pmetrics.json")"
    sleep 0.05
  done
  case "$BUSY" in
    w1) VICTIM_PID=$W1_PID ;;
    w2) VICTIM_PID=$W2_PID ;;
    w3) VICTIM_PID=$W3_PID ;;
    *) fail "unknown busy worker '$BUSY'" ;;
  esac
  echo "smoke: kill -9 shard holder $BUSY"
  kill -9 "$VICTIM_PID"
  wait "$VICTIM_PID" 2>/dev/null || true
  case "$BUSY" in
    w1) W1_PID="" ;;
    w2) W2_PID="" ;;
    w3) W3_PID="" ;;
  esac
else
  echo "smoke: jq missing; skipping the shard-worker kill (completion still checked)"
fi

STATE=""
for i in $(seq 1 1800); do
  curl -sf "$BASE/jobs/$PJOB" >"$WORK/pstat.json" || fail "partitioned job status poll failed"
  STATE="$(json_field "$WORK/pstat.json" .state '"state": *"[^"]*"')"
  case "$STATE" in
    done) break ;;
    failed|cancelled|deadline_exceeded) fail "partitioned job ended $STATE: $(cat "$WORK/pstat.json")" ;;
  esac
  sleep 0.1
done
[[ "$STATE" == done ]] || fail "partitioned job stuck in '$STATE'"
grep -q '"partition": *2' "$WORK/pstat.json" || fail "status payload missing partition: $(cat "$WORK/pstat.json")"
grep -q '"equivalent": *true' "$WORK/pstat.json" || fail "partitioned verify did not prove equivalence: $(cat "$WORK/pstat.json")"

curl -sf "$BASE/jobs/$PJOB/metrics" >"$WORK/pmet.json" || fail "partitioned metrics download failed"
if command -v jq >/dev/null 2>&1; then
  jq -e '.partition.shards == 2 and (.partition.per_shard | length) == 2' "$WORK/pmet.json" >/dev/null \
    || fail "metrics snapshot missing the partition section: $(cat "$WORK/pmet.json")"
else
  grep -q '"partition"' "$WORK/pmet.json" || fail "metrics snapshot missing the partition section"
fi
curl -sf -o "$WORK/part.aig" "$BASE/jobs/$PJOB/result" || fail "partitioned result download failed"
head -c 3 "$WORK/part.aig" | grep -q '^aig' || fail "partitioned result is not binary AIGER"
echo "smoke: partitioned cluster job ok"

for pid in "$W1_PID" "$W2_PID" "$W3_PID"; do
  [[ -n "$pid" ]] && kill -TERM "$pid" 2>/dev/null || true
done
W1_PID=""
W2_PID=""
W3_PID=""
kill -TERM "$DAEMON_PID"
for i in $(seq 1 100); do
  kill -0 "$DAEMON_PID" 2>/dev/null || { DAEMON_PID=""; break; }
  [[ $i -eq 100 ]] && fail "coordinator did not exit on SIGTERM"
  sleep 0.1
done
echo "smoke: PASS"

package dacpara

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dacpara/internal/metrics"
	"dacpara/internal/partition"
)

// MaxPartitionShards is the largest supported shard count of a
// partitioned run.
const MaxPartitionShards = partition.MaxShards

// PartitionSnapshot is the partition section of a metrics snapshot —
// split shape, pipeline timings, per-shard QoR.
type PartitionSnapshot = metrics.PartitionSnapshot

// RewritePartitioned splits net into shards along low-coupling
// frontiers, rewrites every shard independently (concurrently, up to
// Config.Workers goroutines split across shards), and stitches the
// optimized shards back, re-strashing. Each substituted shard is
// CEC-checked against the cone it replaces — a failing shard is
// rejected and its original logic kept — and the stitched whole is
// equivalence-checked against the input within a bounded SAT budget.
// Like Rewrite, the optimized circuit replaces net in place.
func RewritePartitioned(net *Network, engine Engine, cfg Config, shards int) (Result, error) {
	return RewritePartitionedContext(context.Background(), net, engine, cfg, shards)
}

// RewritePartitionedContext is RewritePartitioned with cancellation.
func RewritePartitionedContext(ctx context.Context, net *Network, engine Engine, cfg Config, shards int) (Result, error) {
	if cfg.K > MaxCutWidth {
		return Result{}, fmt.Errorf("dacpara: cut width %d beyond the supported maximum %d", cfg.K, MaxCutWidth)
	}
	return runPartitioned(ctx, net, cfg, shards, "partition("+string(engine)+")",
		func(ctx context.Context, sub *Network, wcfg Config) (Result, *Network, error) {
			res, err := RewriteContext(ctx, sub, engine, wcfg)
			return res, sub, err
		})
}

// FlowPartitioned runs a whole flow script on every shard of a
// partitioned split — the partitioned counterpart of Flow, returning
// the summary result. See RewritePartitioned for the verification
// contract.
func FlowPartitioned(net *Network, script string, cfg Config, shards int) (Result, error) {
	return FlowPartitionedContext(context.Background(), net, script, cfg, shards)
}

// FlowPartitionedContext is FlowPartitioned with cancellation.
func FlowPartitionedContext(ctx context.Context, net *Network, script string, cfg Config, shards int) (Result, error) {
	if _, err := ParseFlow(script); err != nil {
		return Result{}, err
	}
	return runPartitioned(ctx, net, cfg, shards, "partition(flow)",
		func(ctx context.Context, sub *Network, wcfg Config) (Result, *Network, error) {
			steps, final, err := FlowContext(ctx, sub, script, wcfg)
			if err != nil {
				return Result{}, nil, err
			}
			return SummarizeFlow(steps, wcfg, final), final, nil
		})
}

// runPartitioned drives partition.Run with a local shard optimizer and
// folds the per-shard engine results into one facade Result.
func runPartitioned(ctx context.Context, net *Network, cfg Config, shards int, engineName string,
	step func(ctx context.Context, sub *Network, wcfg Config) (Result, *Network, error)) (Result, error) {

	start := time.Now()
	res := Result{
		Engine:      engineName,
		Passes:      max(1, cfg.Passes),
		InitialAnds: net.NumAnds(),
	}
	res.InitialDelay = net.Delay()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parallel := min(shards, workers)
	res.Threads = workers
	wcfg := cfg
	wcfg.Workers = max(1, workers/max(1, parallel))
	wcfg.Metrics = nil // per-shard runs may overlap; one collector cannot serve them

	var mu sync.Mutex
	shardRes := map[int]Result{}
	out, st, err := partition.Run(ctx, net, partition.RunOptions{
		Shards:   shards,
		Parallel: parallel,
		Optimize: func(ctx context.Context, i int, sub *Network) (*Network, string, error) {
			r, final, err := step(ctx, sub, wcfg)
			if err != nil {
				return nil, "local", err
			}
			mu.Lock()
			shardRes[i] = r
			mu.Unlock()
			return final, "local", nil
		},
		WholeVerify: true,
	})
	if err != nil {
		return res, err
	}
	for i, r := range shardRes {
		if st.PerShard[i].Rejected {
			continue // the shard's work was discarded with its graph
		}
		res.Replacements += r.Replacements
		res.Attempts += r.Attempts
		res.Stale += r.Stale
		res.Commits += r.Commits
		res.Aborts += r.Aborts
		res.InjectedAborts += r.InjectedAborts
		res.CommittedWork += r.CommittedWork
		res.WastedWork += r.WastedWork
		res.Incomplete = res.Incomplete || r.Incomplete
	}

	net.Adopt(out)
	res.FinalAnds = net.NumAnds()
	res.FinalDelay = net.Delay()
	res.Duration = time.Since(start)

	if cfg.Metrics != nil {
		snap := &MetricsSnapshot{
			Schema:  metrics.SchemaMetrics,
			Engine:  engineName,
			Workers: workers,
			Passes:  res.Passes,
			WallNs:  res.Duration.Nanoseconds(),
			Speculation: metrics.Spec{
				Commits:        res.Commits,
				Aborts:         res.Aborts,
				InjectedAborts: res.InjectedAborts,
				CommittedNs:    res.CommittedWork.Nanoseconds(),
				WastedNs:       res.WastedWork.Nanoseconds(),
			},
			QoR: metrics.QoRSnapshot{
				InitialAnds:  res.InitialAnds,
				FinalAnds:    res.FinalAnds,
				InitialDelay: int(res.InitialDelay),
				FinalDelay:   int(res.FinalDelay),
				Replacements: res.Replacements,
				Attempts:     res.Attempts,
				Stale:        res.Stale,
				Incomplete:   res.Incomplete,
			},
		}
		st.Decorate(snap)
		res.Metrics = snap
	}
	return res, nil
}

// Package dacpara is a Go implementation of DACPara — "A Divide-and-
// Conquer Parallel Approach for High-Quality Logic Rewriting in
// Large-Scale Circuits" (Qu, Tian, Duan; DAC 2024) — together with every
// substrate the paper builds on: an AIG package with structural hashing
// and functionally-safe replacement, 4-input cut enumeration, NPN
// classification, a precomputed rewriting structure library, a
// Galois-style speculative parallel executor, the serial ABC `rewrite`
// baseline, the ICCAD'18 fused-lock parallel baseline, CPU models of the
// DAC'22/TCAD'23 GPU rewriters, a CDCL SAT solver with combinational
// equivalence checking, and generators for the EPFL-style benchmark suite
// of the paper's Table 1.
//
// This package is the facade: load or generate a network, rewrite it with
// any engine, inspect the result, verify equivalence.
//
//	net, _ := dacpara.Generate("mult", dacpara.ScaleSmall)
//	golden := net.Clone()
//	res, _ := dacpara.Rewrite(net, dacpara.EngineDACPara, dacpara.Config{})
//	fmt.Println(res.AreaReduction())
//	eq, _ := dacpara.Equivalent(golden, net)
package dacpara

import (
	"context"
	"fmt"
	"os"
	"sync"

	"dacpara/internal/aig"
	"dacpara/internal/bench"
	"dacpara/internal/cec"
	"dacpara/internal/core"
	"dacpara/internal/cut"
	"dacpara/internal/guard"
	"dacpara/internal/lockpar"
	"dacpara/internal/metrics"
	"dacpara/internal/npn"
	"dacpara/internal/rewlib"
	"dacpara/internal/rewrite"
	"dacpara/internal/staticpar"
)

// Network is an And-Inverter Graph; see the methods on aig.AIG (Stats,
// Clone, WriteFile, Check, ...).
type Network = aig.AIG

// Config carries the rewriting knobs shared by all engines; the zero
// value is the ABC-`rewrite`-like default.
type Config = rewrite.Config

// Result reports one rewriting run.
type Result = rewrite.Result

// Library is the NPN structure forest shared by all engines.
type Library = rewlib.Library

// MetricsCollector gathers per-phase timings, per-level parallelism,
// speculative-work accounting and QoR deltas for one engine run. Create
// one with NewMetrics, set it on Config.Metrics, and read the snapshot
// from Result.Metrics after the run. A nil collector (the default) costs
// nothing.
type MetricsCollector = metrics.Collector

// MetricsSnapshot is the machine-readable record of one instrumented
// run; its JSON form is the dacpara-metrics/v1 schema that -stats-json
// and cmd/perfbench emit.
type MetricsSnapshot = metrics.Snapshot

// NewMetrics returns an enabled metrics collector.
func NewMetrics() *MetricsCollector { return metrics.New() }

// Scale selects generated benchmark sizes.
type Scale = bench.Scale

// Benchmark scales re-exported for callers.
const (
	ScaleTiny  = bench.ScaleTiny
	ScaleSmall = bench.ScaleSmall
	ScaleFull  = bench.ScaleFull
)

// Engine names a rewriting implementation.
type Engine string

// The five engines of the paper's experimental comparison.
const (
	// EngineSerial is the serial DAG-aware rewriting of ABC's `rewrite`.
	EngineSerial Engine = "abc"
	// EngineLockPar is the fused-operator parallel rewriting of ICCAD'18.
	EngineLockPar Engine = "iccad18"
	// EngineDACPara is the paper's divide-and-conquer three-stage
	// parallel rewriting.
	EngineDACPara Engine = "dacpara"
	// EngineStaticDAC22 models the DAC'22 GPU rewriter (NovelRewrite) on
	// the CPU: static-information evaluation, serial conditional
	// replacement.
	EngineStaticDAC22 Engine = "dac22"
	// EngineStaticTCAD23 models the TCAD'23 GPU rewriter on the CPU.
	EngineStaticTCAD23 Engine = "tcad23"
)

// Engines lists all engine names.
func Engines() []Engine {
	return []Engine{EngineSerial, EngineLockPar, EngineDACPara, EngineStaticDAC22, EngineStaticTCAD23}
}

// P1 is the paper's Table 3 DACPara-P1 configuration (8 cuts, 5
// structures, 134 classes, two passes).
func P1() Config { return rewrite.P1() }

// P2 is the paper's DACPara-P2 configuration (ICCAD'18 setup: unlimited
// cuts/structures, one pass).
func P2() Config { return rewrite.P2() }

// MaxCutWidth is the largest supported rewriting cut width (Config.K).
const MaxCutWidth = cut.MaxK

// CutCache makes cut sets persistent across engine passes and flow steps
// (Config.CutCache): stored sets are revalidated incrementally by node
// version instead of re-enumerated from scratch, with byte-identical
// results. Scope one cache to one flow run or one network's optimization
// session; Flow installs one automatically when the config has none.
type CutCache = cut.Cache

// NewCutCache creates an empty persistent cut cache.
func NewCutCache() *CutCache { return cut.NewCache() }

// RewlibEnv names the environment variable that, when set, points at a
// dacpara-rewlib/v1 file (see cmd/rewlibgen) used to preload the
// large-cut structure forests. The file is purely an acceleration: every
// class is re-verified functionally on load, missing or corrupt files
// are ignored, and any class not in the file is synthesized on demand.
const RewlibEnv = "DACPARA_REWLIB"

var defaultLibrary = sync.OnceValues(func() (*Library, error) {
	return rewlib.Build(npn.Shared(), rewlib.Params{})
})

// DefaultLibrary returns the process-wide structure library, built on
// first use (a few hundred milliseconds, then cached).
func DefaultLibrary() (*Library, error) { return defaultLibrary() }

var defaultBig = sync.OnceValue(func() *rewlib.BigLibrary {
	b := rewlib.NewBigLibrary(rewlib.DefaultBigPerClass)
	if path := os.Getenv(RewlibEnv); path != "" {
		if f, err := rewlib.ReadLibraryFile(path); err == nil {
			f.Preload(b)
		}
	}
	return b
})

// BigLibrary returns the process-wide large-cut structure forest used by
// rewriting with Config.K >= 5, preloaded from the $DACPARA_REWLIB file
// when one is set and synthesizing any other class on demand.
func BigLibrary() *rewlib.BigLibrary { return defaultBig() }

// LoadRewlib decodes a dacpara-rewlib/v1 library file and preloads its
// classes into the process-wide large-cut forest, returning how many
// classes were installed and how many were rejected by functional
// re-verification.
func LoadRewlib(path string) (loaded, rejected int, err error) {
	f, err := rewlib.ReadLibraryFile(path)
	if err != nil {
		return 0, 0, err
	}
	loaded, rejected = f.Preload(defaultBig())
	return loaded, rejected, nil
}

// Rewrite optimizes the network in place with the chosen engine and
// returns the run statistics.
func Rewrite(net *Network, engine Engine, cfg Config) (Result, error) {
	return RewriteContext(context.Background(), net, engine, cfg)
}

// RewriteContext is Rewrite under a context: cancelling ctx interrupts
// the engine at its next cancellation point — the serial engine polls
// between node visits, DACPara and the static engines stop at level
// boundaries and phase barriers, the fused engine at activity boundaries
// — and returns the wrapped ctx error. The network is left structurally
// consistent but partially rewritten, and the Result (marked Incomplete)
// covers the work done; no goroutines outlive the call.
func RewriteContext(ctx context.Context, net *Network, engine Engine, cfg Config) (Result, error) {
	lib, err := DefaultLibrary()
	if err != nil {
		return Result{}, err
	}
	return RewriteWithLibraryContext(ctx, net, engine, cfg, lib)
}

// RewriteWithLibrary is Rewrite against a custom structure library.
func RewriteWithLibrary(net *Network, engine Engine, cfg Config, lib *Library) (Result, error) {
	return RewriteWithLibraryContext(context.Background(), net, engine, cfg, lib)
}

// RewriteWithLibraryContext is RewriteContext against a custom structure
// library.
func RewriteWithLibraryContext(ctx context.Context, net *Network, engine Engine, cfg Config, lib *Library) (Result, error) {
	if cfg.K > MaxCutWidth {
		return Result{}, fmt.Errorf("dacpara: cut width %d beyond the supported maximum %d", cfg.K, MaxCutWidth)
	}
	if cfg.K >= 5 && lib.Big == nil {
		// Large-cut rewriting needs the 5/6-input forests; attach the
		// process-wide one unless the caller brought their own.
		lib = lib.WithBig(defaultBig())
	}
	switch engine {
	case EngineSerial:
		return rewrite.SerialCtx(ctx, net, lib, cfg)
	case EngineLockPar:
		return lockpar.RewriteCtx(ctx, net, lib, cfg)
	case EngineDACPara, "":
		return core.RewriteCtx(ctx, net, lib, cfg)
	case EngineStaticDAC22:
		return staticpar.RewriteCtx(ctx, net, lib, cfg, staticpar.DAC22)
	case EngineStaticTCAD23:
		return staticpar.RewriteCtx(ctx, net, lib, cfg, staticpar.TCAD23)
	}
	return Result{}, fmt.Errorf("dacpara: unknown engine %q", engine)
}

// GuardOptions configures guarded execution (deadline, simulation
// rounds, a custom degradation ladder); the zero value is the default
// ladder with no deadline. See the guard package for details.
type GuardOptions = guard.Options

// GuardReport is the attempt-by-attempt history of one guarded rewrite.
type GuardReport = guard.Report

// ErrGuardExhausted reports that every rung of the degradation ladder
// failed; the network is left unchanged.
var ErrGuardExhausted = guard.ErrExhausted

// RewriteGuarded is Rewrite inside a fault-containment boundary: the
// engine runs on a scratch copy under panic recovery and an optional
// deadline, the result is verified (structural invariants plus a
// random-simulation equivalence screen) before being committed, and on
// any failure the guard rolls back and degrades dacpara → iccad18 → abc
// until a rung produces a verified result. The report records every
// attempt; the error wraps ErrGuardExhausted only if all rungs fail, in
// which case the network is untouched.
func RewriteGuarded(net *Network, engine Engine, cfg Config, opts GuardOptions) (Result, *GuardReport, error) {
	return RewriteGuardedContext(context.Background(), net, engine, cfg, opts)
}

// RewriteGuardedContext is RewriteGuarded under a context. Cancellation
// stops the degradation ladder — an interrupted rung is recorded in the
// report, the network stays untouched, and the wrapped ctx error is
// returned — while a rung that completes and verifies before the cancel
// is observed still commits.
func RewriteGuardedContext(ctx context.Context, net *Network, engine Engine, cfg Config, opts GuardOptions) (Result, *GuardReport, error) {
	lib, err := DefaultLibrary()
	if err != nil {
		return Result{}, nil, err
	}
	if cfg.K > MaxCutWidth {
		return Result{}, nil, fmt.Errorf("dacpara: cut width %d beyond the supported maximum %d", cfg.K, MaxCutWidth)
	}
	if cfg.K >= 5 && lib.Big == nil {
		lib = lib.WithBig(defaultBig())
	}
	if len(opts.Ladder) == 0 {
		opts.Engine = guard.Engine(engine)
	}
	return guard.RewriteCtx(ctx, net, lib, cfg, opts)
}

// ReadAIGER loads a network from an AIGER file (ASCII or binary).
func ReadAIGER(path string) (*Network, error) { return aig.ReadFile(path) }

// NewNetwork returns an empty network for programmatic construction.
func NewNetwork() *Network { return aig.New() }

// Generate builds one of the named benchmark circuits of the paper's
// Table 1 ("sin", "voter", "square", "sqrt", "mult", "log2", "mem_ctrl",
// "hyp", "div", "sixteen", "twenty", "twentythree"), including its
// `double` scaling, at the requested scale.
func Generate(name string, scale Scale) (*Network, error) {
	for _, c := range bench.Suite(scale) {
		if c.Name == name || baseName(c.Name) == name {
			return c.Instantiate(scale), nil
		}
	}
	return nil, fmt.Errorf("dacpara: unknown benchmark %q", name)
}

// BenchmarkNames lists the generatable circuits at a scale.
func BenchmarkNames(scale Scale) []string {
	var names []string
	for _, c := range bench.Suite(scale) {
		names = append(names, c.Name)
	}
	return names
}

func baseName(n string) string {
	for i := 0; i < len(n); i++ {
		if n[i] == '_' {
			// strip the "_10xd" style suffix only
			if i+1 < len(n) && n[i+1] >= '0' && n[i+1] <= '9' {
				return n[:i]
			}
		}
	}
	return n
}

// Equivalent checks combinational equivalence of two networks (random
// simulation screening plus a SAT proof per output).
func Equivalent(a, b *Network) (bool, error) {
	r, err := cec.Check(a, b, cec.Options{})
	if err != nil {
		return false, err
	}
	return r.Equivalent, nil
}

// EquivalentFast is a simulation-only check for very large networks:
// inequivalence is definitive, equivalence is high-confidence but not
// proved.
func EquivalentFast(a, b *Network) (bool, error) {
	r, err := cec.Check(a, b, cec.Options{SimOnly: true, SimRounds: 64})
	if err != nil {
		return false, err
	}
	return r.Equivalent, nil
}

// EquivalentBudget is Equivalent with a bounded proof effort: at most
// conflictBudget SAT conflicts are spent per output (0 means the default
// budget of 200000). When the budget runs out on some output the check
// degrades honestly instead of hanging: eq reflects the simulation
// screen's verdict and proved is false. Inequivalence (a counterexample
// from simulation or SAT) is always definitive. This is the bound a
// service should use when verifying untrusted submissions — a
// SAT-adversarial circuit then costs a bounded slice of solver work, not
// an unbounded job.
func EquivalentBudget(a, b *Network, conflictBudget int64) (eq, proved bool, err error) {
	r, err := cec.Check(a, b, cec.Options{OutputBudget: conflictBudget})
	if err != nil {
		return false, false, err
	}
	return r.Equivalent, r.Proved, nil
}
